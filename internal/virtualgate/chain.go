package virtualgate

import (
	"errors"
	"fmt"
	"math"
)

// Chain composes the pairwise virtualization matrices of an n-dot linear
// array (Section 2.3: "n−1 pair extraction processes") into one N×N
// virtualization matrix with unit diagonal and tridiagonal compensation
// terms.
type Chain struct {
	N   int
	A12 []float64 // per-pair dot-i compensation, len N-1
	A21 []float64 // per-pair dot-(i+1) compensation, len N-1

	// dense caches the row-major N×N matrix; SetPair invalidates it, Dense
	// rebuilds it lazily. This keeps the planner's hot composition loop —
	// SetPair per pair result, then repeated Dense/ApplyInto — free of
	// per-call N×N reallocation.
	dense []float64
}

// NewChain allocates an identity chain for n dots.
func NewChain(n int) (*Chain, error) {
	if n < 2 {
		return nil, errors.New("virtualgate: chain needs at least 2 dots")
	}
	return &Chain{N: n, A12: make([]float64, n-1), A21: make([]float64, n-1)}, nil
}

// SetPair records the extracted pair matrix for adjacent dots (i, i+1) and
// invalidates the cached dense form.
func (c *Chain) SetPair(i int, m Mat2) error {
	if i < 0 || i >= c.N-1 {
		return fmt.Errorf("virtualgate: pair index %d out of range", i)
	}
	c.A12[i] = m.A12()
	c.A21[i] = m.A21()
	c.dense = nil
	return nil
}

// Dense returns the row-major N×N virtualization matrix (entry (i, j) at
// i·N+j) as a cached, read-only view: repeated calls between SetPairs cost
// no allocation. Callers must not modify the slice; use Matrix for an owned
// copy. The lazy cache makes Dense (unlike every other Chain method, which
// never touches it) unsafe to call concurrently with itself or SetPair —
// it exists for the planner's single-goroutine composition loop.
func (c *Chain) Dense() []float64 {
	if c.dense == nil {
		d := make([]float64, c.N*c.N)
		for i := 0; i < c.N; i++ {
			d[i*c.N+i] = 1
		}
		for i := 0; i < c.N-1; i++ {
			d[i*c.N+i+1] = c.A12[i]
			d[(i+1)*c.N+i] = c.A21[i]
		}
		c.dense = d
	}
	return c.dense
}

// Matrix returns the dense N×N virtualization matrix as freshly allocated
// rows the caller owns. It builds the rows directly (no shared cache), so
// concurrent Matrix/Apply/Solve calls on one Chain stay safe.
func (c *Chain) Matrix() [][]float64 {
	m := make([][]float64, c.N)
	for i := range m {
		m[i] = make([]float64, c.N)
		m[i][i] = 1
	}
	for i := 0; i < c.N-1; i++ {
		m[i][i+1] = c.A12[i]
		m[i+1][i] = c.A21[i]
	}
	return m
}

// ApplyInto maps physical gate voltages to virtual gate voltages, writing
// into dst (grown as needed) and allocating nothing once dst has capacity.
// The tridiagonal structure is used directly — out[i] accumulates the
// nonzero terms in the same ascending-column order as a dense row product,
// so the result is bit-identical to Apply on the full matrix. dst must not
// alias v.
func (c *Chain) ApplyInto(dst, v []float64) ([]float64, error) {
	if len(v) != c.N {
		return nil, errors.New("virtualgate: voltage vector length mismatch")
	}
	if cap(dst) < c.N {
		dst = make([]float64, c.N)
	}
	dst = dst[:c.N]
	for i := 0; i < c.N; i++ {
		s := 0.0
		if i > 0 {
			s += c.A21[i-1] * v[i-1]
		}
		s += v[i]
		if i < c.N-1 {
			s += c.A12[i] * v[i+1]
		}
		dst[i] = s
	}
	return dst, nil
}

// Apply maps physical gate voltages to virtual gate voltages.
func (c *Chain) Apply(v []float64) ([]float64, error) {
	return c.ApplyInto(nil, v)
}

// Solve maps virtual gate voltages back to physical voltages by solving
// M·v = u with Gaussian elimination (partial pivoting).
func (c *Chain) Solve(u []float64) ([]float64, error) {
	if len(u) != c.N {
		return nil, errors.New("virtualgate: voltage vector length mismatch")
	}
	n := c.N
	m := c.Matrix()
	for i := range m {
		m[i] = append(m[i], u[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-15 {
			return nil, errors.New("virtualgate: singular chain matrix")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for cc := col; cc <= n; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
