package virtualgate

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fastvg/fastvg/internal/grid"
)

func TestFromSlopes(t *testing.T) {
	m, err := FromSlopes(-8, -0.12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A12()-0.125) > 1e-12 {
		t.Errorf("a12 = %v, want 0.125", m.A12())
	}
	if math.Abs(m.A21()-0.12) > 1e-12 {
		t.Errorf("a21 = %v, want 0.12", m.A21())
	}
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Error("diagonal not unit")
	}
}

func TestFromSlopesRejectsNonPhysical(t *testing.T) {
	cases := [][2]float64{
		{-0.5, -0.1}, // steep not steep
		{-8, -1.5},   // shallow too steep
		{-8, 0.2},    // shallow positive
		{8, -0.1},    // steep positive
		{math.NaN(), -0.1},
	}
	for _, c := range cases {
		if _, err := FromSlopes(c[0], c[1]); err == nil {
			t.Errorf("FromSlopes(%v, %v) accepted", c[0], c[1])
		}
	}
}

func TestPerfectMatrixOrthogonalises(t *testing.T) {
	steep, shallow := -7.3, -0.21
	m, err := FromSlopes(steep, shallow)
	if err != nil {
		t.Fatal(err)
	}
	sErr, hErr := m.OrthogonalityError(steep, shallow)
	if sErr > 1e-9 || hErr > 1e-9 {
		t.Errorf("orthogonality error of exact matrix = (%v, %v)", sErr, hErr)
	}
}

func TestWrongMatrixHasOrthogonalityError(t *testing.T) {
	m, err := FromSlopes(-3, -0.4) // built for the wrong slopes
	if err != nil {
		t.Fatal(err)
	}
	sErr, hErr := m.OrthogonalityError(-8, -0.1)
	if sErr < 1 || hErr < 1 {
		t.Errorf("mismat: orthogonality error = (%v, %v), want both > 1°", sErr, hErr)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(steepRaw, shallowRaw, v1, v2 float64) bool {
		steep := -1.5 - math.Mod(math.Abs(steepRaw), 15)
		shallow := -math.Mod(math.Abs(shallowRaw), 0.9)
		if shallow == 0 {
			shallow = -0.1
		}
		if math.Abs(v1) > 1e6 || math.Abs(v2) > 1e6 || math.IsNaN(v1) || math.IsNaN(v2) {
			return true
		}
		m, err := FromSlopes(steep, shallow)
		if err != nil {
			return false
		}
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		u1, u2 := m.Apply(v1, v2)
		b1, b2 := inv.Apply(u1, u2)
		return math.Abs(b1-v1) < 1e-6*(1+math.Abs(v1)) && math.Abs(b2-v2) < 1e-6*(1+math.Abs(v2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMulIdentity(t *testing.T) {
	m, _ := FromSlopes(-5, -0.2)
	if got := m.Mul(Identity()); got != m {
		t.Errorf("m·I = %v, want %v", got, m)
	}
	inv, _ := m.Inverse()
	p := m.Mul(inv)
	if math.Abs(p[0][0]-1) > 1e-12 || math.Abs(p[0][1]) > 1e-12 ||
		math.Abs(p[1][0]) > 1e-12 || math.Abs(p[1][1]-1) > 1e-12 {
		t.Errorf("m·m⁻¹ = %v, want identity", p)
	}
}

func TestSingularInverse(t *testing.T) {
	var m Mat2 // zero matrix
	if _, err := m.Inverse(); err == nil {
		t.Error("inverted singular matrix")
	}
}

func TestWarpStraightensLines(t *testing.T) {
	// Build a CSD-like image whose steep line (slope -6 through x=40 at y=0)
	// separates dark from bright; warp with the exact matrix; check the line
	// image is vertical: the boundary column must be identical at the bottom
	// and top of the warped image.
	steep, shallow := -6.0, -0.15
	g := grid.New(64, 64)
	g.Apply(func(x, y int, _ float64) float64 {
		v := 1.0
		if float64(y) > steep*(float64(x)-40) { // right of steep line
			v -= 0.5
		}
		if float64(y) > 50+shallow*float64(x) { // above shallow line
			v -= 0.3
		}
		return v
	})
	m, err := FromSlopes(steep, shallow)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Warp(g, m)
	if err != nil {
		t.Fatal(err)
	}
	findBoundary := func(y int) int {
		for x := 1; x < w.W; x++ {
			if w.At(x, y) < w.At(0, y)-0.25 {
				return x
			}
		}
		return -1
	}
	bLo := findBoundary(2)
	bHi := findBoundary(w.H / 3)
	if bLo < 0 || bHi < 0 {
		t.Fatal("warped boundary not found")
	}
	if d := bLo - bHi; d < -1 || d > 1 {
		t.Errorf("warped steep boundary drifts: x=%d at bottom vs x=%d above", bLo, bHi)
	}
}

func TestWarpSingular(t *testing.T) {
	var m Mat2
	if _, err := Warp(grid.New(4, 4), m); err == nil {
		t.Error("warped with singular matrix")
	}
}

func TestChainComposition(t *testing.T) {
	c, err := NewChain(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m, err := FromSlopes(-8, -0.1*float64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetPair(i, m); err != nil {
			t.Fatal(err)
		}
	}
	m := c.Matrix()
	if m[0][0] != 1 || m[3][3] != 1 {
		t.Error("diagonal not unit")
	}
	if math.Abs(m[0][1]-0.125) > 1e-12 {
		t.Errorf("m[0][1] = %v", m[0][1])
	}
	if math.Abs(m[1][0]-0.1) > 1e-12 {
		t.Errorf("m[1][0] = %v", m[1][0])
	}
	if m[0][2] != 0 || m[2][0] != 0 {
		t.Error("chain matrix not tridiagonal")
	}
}

func TestChainApplySolveRoundTrip(t *testing.T) {
	c, _ := NewChain(5)
	for i := 0; i < 4; i++ {
		m, _ := FromSlopes(-6-float64(i), -0.1-0.02*float64(i))
		if err := c.SetPair(i, m); err != nil {
			t.Fatal(err)
		}
	}
	v := []float64{10, 20, 30, 40, 50}
	u, err := c.Apply(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Solve(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Abs(back[i]-v[i]) > 1e-9 {
			t.Errorf("round trip v[%d] = %v, want %v", i, back[i], v[i])
		}
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain(1); err == nil {
		t.Error("accepted 1-dot chain")
	}
	c, _ := NewChain(3)
	m, _ := FromSlopes(-5, -0.2)
	if err := c.SetPair(5, m); err == nil {
		t.Error("accepted out-of-range pair")
	}
	if _, err := c.Apply([]float64{1, 2}); err == nil {
		t.Error("accepted short vector")
	}
	if _, err := c.Solve([]float64{1, 2}); err == nil {
		t.Error("accepted short vector in Solve")
	}
}
