package virtualgate

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/csd"
)

// VerifyConfig tunes on-device verification.
type VerifyConfig struct {
	// AlongFracs are the positions along each transition line (as fractions
	// of the distance from the window edge to the triple point) at which the
	// line is re-located; default {0.25, 0.5, 0.75}. Staying below/left of
	// the triple point keeps the probe paths out of the honeycomb interdot
	// strip, where crossing the line only transfers an electron between dots
	// and barely moves the sensor.
	AlongFracs []float64
	// ScanFrac is the half-width of each crossing scan as a fraction of the
	// window span; default 0.15.
	ScanFrac float64
	// MaxShiftFrac is the allowed drift of a line's measured position across
	// the AlongFracs, as a fraction of the window span; default
	// DefaultMaxShiftFrac.
	MaxShiftFrac float64
}

// DefaultMaxShiftFrac is the drift tolerance substituted for a zero
// VerifyConfig.MaxShiftFrac.
const DefaultMaxShiftFrac = 0.02

func (c *VerifyConfig) fillDefaults() {
	if len(c.AlongFracs) == 0 {
		c.AlongFracs = []float64{0.25, 0.5, 0.75}
	}
	if c.ScanFrac == 0 {
		c.ScanFrac = 0.15
	}
	if c.MaxShiftFrac == 0 {
		c.MaxShiftFrac = DefaultMaxShiftFrac
	}
}

// VerifyResult reports the measured line positions under virtual-gate
// stepping.
type VerifyResult struct {
	// SteepPositions[i] is the steep line's measured V'1 crossing with the
	// orthogonal virtual gate at AlongFracs[i]; a correct matrix keeps them
	// equal.
	SteepPositions []float64
	// ShallowPositions mirrors for the shallow line (V'2 crossings).
	ShallowPositions []float64
	// SteepShift and ShallowShift are the max-min spreads, in millivolts.
	SteepShift   float64
	ShallowShift float64
	// Probes spent on verification.
	Probes int
	// OK reports whether both shifts stay within tolerance.
	OK bool
}

// ErrVerify is returned when the lines cannot be re-located during
// verification.
var ErrVerify = errors.New("virtualgate: verification could not re-locate the transition lines")

// Verify checks a virtualization matrix on the device itself — the
// measurement equivalent of the paper's manual inspection of the warped
// diagram. (kneeV1, kneeV2) is the transition-line intersection the
// extraction located (core.Result.TriplePointVoltage). For each line,
// Verify steps the *other* dot's virtual gate to several positions between
// the window edge and the knee and re-locates the line with a short 1-D
// scan in virtual coordinates: under a correct matrix the measured crossing
// does not move. The cost is a handful of line scans (≪ one CSD).
//
// ctx is checked between probes, so a long knee scan is cancellable
// mid-sweep; on cancellation the context's error is returned with the probes
// already spent recorded in the partial result.
func Verify(ctx context.Context, src csd.CurrentGetter, win csd.Window, m Mat2, kneeV1, kneeV2 float64, cfg VerifyConfig) (*VerifyResult, error) {
	cfg.fillDefaults()
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	res := &VerifyResult{}
	span1 := win.V1Max - win.V1Min
	span2 := win.V2Max - win.V2Min
	ku1, ku2 := m.Apply(kneeV1, kneeV2)
	// Virtual coordinates of the window's lower-left corner, for the spans
	// from edge to knee.
	eu1, eu2 := m.Apply(win.V1Min, win.V2Min)

	// Steep line: scan V'1 across the knee's u1 at several u2 below the knee.
	for _, f := range cfg.AlongFracs {
		u2 := eu2 + f*(ku2-eu2)
		pos, probes, ok, err := scanDrop(ctx, src, win, inv, true, u2,
			ku1-cfg.ScanFrac*span1, ku1+cfg.ScanFrac*span1, win.StepV1())
		res.Probes += probes
		if err != nil {
			return res, err
		}
		if !ok {
			return res, fmt.Errorf("%w: steep line not found at fraction %.2f", ErrVerify, f)
		}
		res.SteepPositions = append(res.SteepPositions, pos)
	}
	// Shallow line: scan V'2 across the knee's u2 at several u1 left of the knee.
	for _, f := range cfg.AlongFracs {
		u1 := eu1 + f*(ku1-eu1)
		pos, probes, ok, err := scanDrop(ctx, src, win, inv, false, u1,
			ku2-cfg.ScanFrac*span2, ku2+cfg.ScanFrac*span2, win.StepV2())
		res.Probes += probes
		if err != nil {
			return res, err
		}
		if !ok {
			return res, fmt.Errorf("%w: shallow line not found at fraction %.2f", ErrVerify, f)
		}
		res.ShallowPositions = append(res.ShallowPositions, pos)
	}
	res.SteepShift = spread(res.SteepPositions)
	res.ShallowShift = spread(res.ShallowPositions)
	res.OK = res.SteepShift <= cfg.MaxShiftFrac*span1 && res.ShallowShift <= cfg.MaxShiftFrac*span2
	return res, nil
}

// scanDrop walks one virtual axis from lo to hi (step pitch) holding the
// other virtual coordinate fixed, and returns the position of the largest
// single-step current drop — the transition crossing. ctx is polled before
// every probe so service-job cancellation interrupts the sweep between
// measurements (a probe in flight is never abandoned mid-dwell).
func scanDrop(ctx context.Context, src csd.CurrentGetter, win csd.Window, inv Mat2, alongU1 bool, fixed, lo, hi, pitch float64) (pos float64, probes int, ok bool, err error) {
	prev := math.NaN()
	bestDrop := 0.0
	var bestPos float64
	for u := lo; u <= hi; u += pitch {
		if err := ctx.Err(); err != nil {
			return 0, probes, false, err
		}
		var v1, v2 float64
		if alongU1 {
			v1, v2 = inv.Apply(u, fixed)
		} else {
			v1, v2 = inv.Apply(fixed, u)
		}
		// Stay inside the window (the device is only recorded there).
		if v1 < win.V1Min || v1 > win.V1Max || v2 < win.V2Min || v2 > win.V2Max {
			prev = math.NaN()
			continue
		}
		c := src.GetCurrent(v1, v2)
		probes++
		if !math.IsNaN(prev) {
			if drop := prev - c; drop > bestDrop {
				bestDrop = drop
				bestPos = u - pitch/2
			}
		}
		prev = c
	}
	if bestDrop <= 0 {
		return 0, probes, false, nil
	}
	return bestPos, probes, true, nil
}

func spread(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}
