package virtualgate

import (
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/xrand"
)

// randomChain builds an n-dot chain with physics-plausible random pair
// matrices (steep < -1, shallow in (-1, 0)) drawn from rng.
func randomChain(t *testing.T, rng *xrand.Rand, n int) *Chain {
	t.Helper()
	c, err := NewChain(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		steep := -1.5 - 12*rng.Float64()
		shallow := -0.02 - 0.6*rng.Float64()
		m, err := FromSlopes(steep, shallow)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetPair(i, m); err != nil {
			t.Fatalf("SetPair(%d): %v", i, err)
		}
	}
	return c
}

// TestChainApplySolveProperty is the property test of the chain linear
// algebra: for random tridiagonal chains and random voltage vectors,
// Solve(Apply(v)) == v and Apply(Solve(u)) == u to numerical precision.
func TestChainApplySolveProperty(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		c := randomChain(t, rng, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = 100 * (rng.Float64() - 0.5)
		}
		u, err := c.Apply(v)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		back, err := c.Solve(u)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-9 {
				t.Fatalf("trial %d (n=%d): Solve(Apply(v))[%d] = %v, want %v",
					trial, n, i, back[i], v[i])
			}
		}
		again, err := c.Apply(back)
		if err != nil {
			t.Fatalf("Apply(Solve): %v", err)
		}
		for i := range u {
			if math.Abs(again[i]-u[i]) > 1e-9 {
				t.Fatalf("trial %d (n=%d): Apply(Solve(u))[%d] = %v, want %v",
					trial, n, i, again[i], u[i])
			}
		}
	}
}

// TestChainMatrixShape checks the dense matrix is tridiagonal with a unit
// diagonal and the recorded pair compensations on the off-diagonals.
func TestChainMatrixShape(t *testing.T) {
	rng := xrand.New(7)
	c := randomChain(t, rng, 5)
	m := c.Matrix()
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			switch {
			case i == j:
				if m[i][j] != 1 {
					t.Errorf("diag[%d] = %v, want 1", i, m[i][j])
				}
			case j == i+1:
				if m[i][j] != c.A12[i] {
					t.Errorf("m[%d][%d] = %v, want A12[%d] = %v", i, j, m[i][j], i, c.A12[i])
				}
			case i == j+1:
				if m[i][j] != c.A21[j] {
					t.Errorf("m[%d][%d] = %v, want A21[%d] = %v", i, j, m[i][j], j, c.A21[j])
				}
			default:
				if m[i][j] != 0 {
					t.Errorf("m[%d][%d] = %v, want 0 off the tridiagonal", i, j, m[i][j])
				}
			}
		}
	}
}

// TestChainErrorPaths covers the constructor and SetPair/Apply/Solve argument
// validation.
func TestChainErrorPaths(t *testing.T) {
	if _, err := NewChain(1); err == nil {
		t.Error("NewChain(1) accepted")
	}
	if _, err := NewChain(0); err == nil {
		t.Error("NewChain(0) accepted")
	}
	c, err := NewChain(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromSlopes(-8, -0.12)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPair(-1, m); err == nil {
		t.Error("SetPair(-1) accepted")
	}
	if err := c.SetPair(2, m); err == nil {
		t.Error("SetPair(N-1) accepted")
	}
	if err := c.SetPair(0, m); err != nil {
		t.Errorf("SetPair(0): %v", err)
	}
	if _, err := c.Apply([]float64{1, 2}); err == nil {
		t.Error("Apply with short vector accepted")
	}
	if _, err := c.Solve([]float64{1, 2, 3, 4}); err == nil {
		t.Error("Solve with long vector accepted")
	}
}

// TestChainSolveSingular checks the elimination reports singular chains
// instead of dividing by zero. a12·a21 = 1 makes a 2-dot chain singular.
func TestChainSolveSingular(t *testing.T) {
	c, err := NewChain(2)
	if err != nil {
		t.Fatal(err)
	}
	c.A12[0] = 2
	c.A21[0] = 0.5
	if _, err := c.Solve([]float64{1, 1}); err == nil {
		t.Error("singular chain solved")
	}
}
