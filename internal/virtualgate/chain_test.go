package virtualgate

import (
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/xrand"
)

// randomChain builds an n-dot chain with physics-plausible random pair
// matrices (steep < -1, shallow in (-1, 0)) drawn from rng.
func randomChain(t *testing.T, rng *xrand.Rand, n int) *Chain {
	t.Helper()
	c, err := NewChain(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		steep := -1.5 - 12*rng.Float64()
		shallow := -0.02 - 0.6*rng.Float64()
		m, err := FromSlopes(steep, shallow)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetPair(i, m); err != nil {
			t.Fatalf("SetPair(%d): %v", i, err)
		}
	}
	return c
}

// TestChainApplySolveProperty is the property test of the chain linear
// algebra: for random tridiagonal chains and random voltage vectors,
// Solve(Apply(v)) == v and Apply(Solve(u)) == u to numerical precision.
func TestChainApplySolveProperty(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		c := randomChain(t, rng, n)
		v := make([]float64, n)
		for i := range v {
			v[i] = 100 * (rng.Float64() - 0.5)
		}
		u, err := c.Apply(v)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		back, err := c.Solve(u)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-9 {
				t.Fatalf("trial %d (n=%d): Solve(Apply(v))[%d] = %v, want %v",
					trial, n, i, back[i], v[i])
			}
		}
		again, err := c.Apply(back)
		if err != nil {
			t.Fatalf("Apply(Solve): %v", err)
		}
		for i := range u {
			if math.Abs(again[i]-u[i]) > 1e-9 {
				t.Fatalf("trial %d (n=%d): Apply(Solve(u))[%d] = %v, want %v",
					trial, n, i, again[i], u[i])
			}
		}
	}
}

// TestChainMatrixShape checks the dense matrix is tridiagonal with a unit
// diagonal and the recorded pair compensations on the off-diagonals.
func TestChainMatrixShape(t *testing.T) {
	rng := xrand.New(7)
	c := randomChain(t, rng, 5)
	m := c.Matrix()
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			switch {
			case i == j:
				if m[i][j] != 1 {
					t.Errorf("diag[%d] = %v, want 1", i, m[i][j])
				}
			case j == i+1:
				if m[i][j] != c.A12[i] {
					t.Errorf("m[%d][%d] = %v, want A12[%d] = %v", i, j, m[i][j], i, c.A12[i])
				}
			case i == j+1:
				if m[i][j] != c.A21[j] {
					t.Errorf("m[%d][%d] = %v, want A21[%d] = %v", i, j, m[i][j], j, c.A21[j])
				}
			default:
				if m[i][j] != 0 {
					t.Errorf("m[%d][%d] = %v, want 0 off the tridiagonal", i, j, m[i][j])
				}
			}
		}
	}
}

// TestChainErrorPaths covers the constructor and SetPair/Apply/Solve argument
// validation.
func TestChainErrorPaths(t *testing.T) {
	if _, err := NewChain(1); err == nil {
		t.Error("NewChain(1) accepted")
	}
	if _, err := NewChain(0); err == nil {
		t.Error("NewChain(0) accepted")
	}
	c, err := NewChain(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromSlopes(-8, -0.12)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPair(-1, m); err == nil {
		t.Error("SetPair(-1) accepted")
	}
	if err := c.SetPair(2, m); err == nil {
		t.Error("SetPair(N-1) accepted")
	}
	if err := c.SetPair(0, m); err != nil {
		t.Errorf("SetPair(0): %v", err)
	}
	if _, err := c.Apply([]float64{1, 2}); err == nil {
		t.Error("Apply with short vector accepted")
	}
	if _, err := c.Solve([]float64{1, 2, 3, 4}); err == nil {
		t.Error("Solve with long vector accepted")
	}
}

// TestChainSolveSingular checks the elimination reports singular chains
// instead of dividing by zero. a12·a21 = 1 makes a 2-dot chain singular.
func TestChainSolveSingular(t *testing.T) {
	c, err := NewChain(2)
	if err != nil {
		t.Fatal(err)
	}
	c.A12[0] = 2
	c.A21[0] = 0.5
	if _, err := c.Solve([]float64{1, 1}); err == nil {
		t.Error("singular chain solved")
	}
}

// TestChainApplyIntoMatchesMatrixProduct pins the copy-free tridiagonal
// path against the dense row product, bit for bit.
func TestChainApplyIntoMatchesMatrixProduct(t *testing.T) {
	c, err := NewChain(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m, err := FromSlopes(-8+float64(i), -0.1-0.02*float64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetPair(i, m); err != nil {
			t.Fatal(err)
		}
	}
	v := []float64{3.5, -1.25, 7, 0.125, -9.5, 2}
	dense := c.Matrix()
	want := make([]float64, 6)
	for i := range dense {
		for j, mij := range dense[i] {
			want[i] += mij * v[j]
		}
	}
	got, err := c.Apply(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Apply[%d] = %v, dense product %v", i, got[i], want[i])
		}
	}
}

// TestChainHotPathAllocs is the planner-loop allocation regression: with a
// warm destination, repeated ApplyInto and Dense calls allocate nothing,
// and Matrix (the copying public path) still allocates — proving the cache
// is what the hot path rides on.
func TestChainHotPathAllocs(t *testing.T) {
	c, err := NewChain(8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromSlopes(-8, -0.12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := c.SetPair(i, m); err != nil {
			t.Fatal(err)
		}
	}
	v := make([]float64, 8)
	for i := range v {
		v[i] = float64(i)
	}
	dst := make([]float64, 8)
	_ = c.Dense() // build the cache once
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = c.ApplyInto(dst, v)
		if err != nil {
			t.Fatal(err)
		}
		_ = c.Dense()
	})
	if allocs != 0 {
		t.Fatalf("warm ApplyInto+Dense allocate %.1f objects/op, want 0", allocs)
	}

	// SetPair invalidates; the next Dense rebuilds exactly once.
	if err := c.SetPair(3, m); err != nil {
		t.Fatal(err)
	}
	rebuild := testing.AllocsPerRun(1, func() { _ = c.Dense() })
	_ = rebuild // first run inside AllocsPerRun warms; the steady state matters:
	steady := testing.AllocsPerRun(50, func() { _ = c.Dense() })
	if steady != 0 {
		t.Fatalf("Dense allocates %.1f objects/op after rebuild, want 0", steady)
	}
}
