package virtualgate

import (
	"context"
	"errors"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

func verifyDevice(t *testing.T) (*device.SimInstrument, csd.Window, float64, float64, [2]float64) {
	t.Helper()
	steep, shallow := -8.0, -0.12
	phys, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   steep,
		ShallowSlope: shallow,
		SteepPoint:   [2]float64{33, 0},
		ShallowPoint: [2]float64{0, 31},
		EC1:          4, EC2: 4, ECm: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1t, v2t, err := phys.TriplePoint()
	if err != nil {
		t.Fatal(err)
	}
	dev := &device.DoubleDot{Phys: phys, Sens: sensor.DefaultDoubleDot(0.47, 0.45, 100)}
	win := csd.NewSquareWindow(0, 0, 50, 100)
	return device.NewSimInstrument(dev, device.DefaultDwell, win.StepV1(), win.StepV2()), win, steep, shallow, [2]float64{v1t, v2t}
}

func TestVerifyAcceptsCorrectMatrix(t *testing.T) {
	inst, win, steep, shallow, knee := verifyDevice(t)
	m, err := FromSlopes(steep, shallow)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(context.Background(), inst, win, m, knee[0], knee[1], VerifyConfig{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.OK {
		t.Errorf("correct matrix rejected: steep shift %.3f mV, shallow shift %.3f mV",
			res.SteepShift, res.ShallowShift)
	}
	if res.Probes <= 0 || res.Probes > 1200 {
		t.Errorf("verification probes = %d, want a few line scans", res.Probes)
	}
	if len(res.SteepPositions) != 3 || len(res.ShallowPositions) != 3 {
		t.Errorf("positions = %d/%d, want 3/3", len(res.SteepPositions), len(res.ShallowPositions))
	}
}

func TestVerifyRejectsIdentityMatrix(t *testing.T) {
	// Without compensation the lines move under virtual stepping exactly by
	// the cross-coupling — verification must flag it.
	inst, win, _, _, knee := verifyDevice(t)
	res, err := Verify(context.Background(), inst, win, Identity(), knee[0], knee[1], VerifyConfig{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.OK {
		t.Errorf("identity matrix accepted: steep shift %.3f, shallow shift %.3f",
			res.SteepShift, res.ShallowShift)
	}
	// The steep line's apparent shift under ±15% V2 stepping should be about
	// |ΔV2|·|1/mSteep| = 15 mV · 0.125 ≈ 1.9 mV.
	if res.SteepShift < 0.8 {
		t.Errorf("uncompensated steep shift = %.3f mV, expected ≈ 1.9 mV", res.SteepShift)
	}
}

func TestVerifyRejectsWrongSignMatrix(t *testing.T) {
	inst, win, steep, shallow, knee := verifyDevice(t)
	m, err := FromSlopes(steep, shallow)
	if err != nil {
		t.Fatal(err)
	}
	// Over-compensating makes the lines move the other way. Rejection may
	// come as OK=false (lines drift) or as ErrVerify (the badly warped scan
	// paths cannot re-locate a line at all).
	m[0][1] *= 2.5
	m[1][0] *= 2.5
	res, err := Verify(context.Background(), inst, win, m, knee[0], knee[1], VerifyConfig{})
	if err == nil && res.OK {
		t.Error("over-compensated matrix accepted")
	}
	if err != nil && !errors.Is(err, ErrVerify) {
		t.Errorf("unexpected error type: %v", err)
	}
}

func TestVerifyErrorsWithoutLines(t *testing.T) {
	flat := flatGetter{}
	win := csd.NewSquareWindow(0, 0, 50, 100)
	_, err := Verify(context.Background(), flat, win, Identity(), 30, 28, VerifyConfig{})
	if !errors.Is(err, ErrVerify) {
		t.Errorf("err = %v, want ErrVerify", err)
	}
}

type flatGetter struct{}

func (flatGetter) GetCurrent(v1, v2 float64) float64 { return 1 }

func TestVerifySingularMatrix(t *testing.T) {
	inst, win, _, _, knee := verifyDevice(t)
	var m Mat2
	if _, err := Verify(context.Background(), inst, win, m, knee[0], knee[1], VerifyConfig{}); err == nil {
		t.Error("accepted singular matrix")
	}
}

// TestVerifyCancellable checks a context cancelled mid-sweep interrupts the
// scan loop promptly with the context's error (the partial result still
// carries the probes already spent).
func TestVerifyCancellable(t *testing.T) {
	inst, win, steep, shallow, knee := verifyDevice(t)
	m, err := FromSlopes(steep, shallow)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Verify(ctx, inst, win, m, knee[0], knee[1], VerifyConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Probes != 0 {
		t.Errorf("pre-cancelled verify spent %d probes, want 0", res.Probes)
	}

	// Cancel after a fixed number of probes: the sweep must stop there.
	const budget = 10
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cg := &cancellingGetter{inst: inst, after: budget, cancel: cancel2}
	res, err = Verify(ctx2, cg, win, m, knee[0], knee[1], VerifyConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Probes != budget {
		t.Errorf("sweep continued past cancellation: %d probes, want %d", res.Probes, budget)
	}
}

// cancellingGetter cancels its context once a probe budget is exhausted.
type cancellingGetter struct {
	inst   csd.CurrentGetter
	count  int
	after  int
	cancel context.CancelFunc
}

func (c *cancellingGetter) GetCurrent(v1, v2 float64) float64 {
	c.count++
	if c.count >= c.after {
		c.cancel()
	}
	return c.inst.GetCurrent(v1, v2)
}
