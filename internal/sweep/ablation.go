package sweep

import (
	"errors"
	"math"

	"github.com/fastvg/fastvg/internal/grid"
)

// RowSweepNoShrink is the ablation of the triangle-shrinking update: the
// moving anchor is NOT advanced to each found point, so every row probes the
// full segment of the initial (static) triangle. It quantifies how much of
// the paper's probe reduction comes from the dynamic shrinking of
// Section 4.3.2.
func RowSweepNoShrink(src Source, left, bottom grid.Point) (Trace, error) {
	if left.Y <= bottom.Y || left.X >= bottom.X {
		return Trace{}, errors.New("sweep: anchors do not form a valid triangle")
	}
	var tr Trace
	for y := bottom.Y + 1; y <= left.Y-1; y++ {
		lo, hi := rowSegment(left, bottom, y)
		bestX, bestG := 0, math.Inf(-1)
		for x := lo; x <= hi; x++ {
			tr.Probed = append(tr.Probed, grid.Point{X: x, Y: y})
			if g := FeatureGradient(src, x, y); g > bestG {
				bestG = g
				bestX = x
			}
		}
		tr.Chosen = append(tr.Chosen, grid.Point{X: bestX, Y: y})
	}
	return tr, nil
}

// ColSweepNoShrink is the column-major no-shrinking ablation.
func ColSweepNoShrink(src Source, left, bottom grid.Point) (Trace, error) {
	if left.Y <= bottom.Y || left.X >= bottom.X {
		return Trace{}, errors.New("sweep: anchors do not form a valid triangle")
	}
	var tr Trace
	for x := left.X + 1; x <= bottom.X-1; x++ {
		lo, hi := colSegment(bottom, left, x)
		bestY, bestG := 0, math.Inf(-1)
		for y := lo; y <= hi; y++ {
			tr.Probed = append(tr.Probed, grid.Point{X: x, Y: y})
			if g := FeatureGradient(src, x, y); g > bestG {
				bestG = g
				bestY = y
			}
		}
		tr.Chosen = append(tr.Chosen, grid.Point{X: x, Y: bestY})
	}
	return tr, nil
}
