// Package sweep implements the core search of the paper's Section 4.3: the
// feature gradient (Algorithm 2) and the shrinking-triangle row-major and
// column-major sweeps (Algorithm 3, lines 5–18) that locate charge-state
// transition points while probing only a thin band around the lines.
package sweep

import (
	"errors"
	"math"

	"github.com/fastvg/fastvg/internal/grid"
)

// Source provides sensor current at integer pixel coordinates. Probing one
// pixel past the window edge is allowed (instruments extrapolate or clamp).
type Source interface {
	Current(x, y int) float64
}

// FeatureGradient is Algorithm 2: the positively tilted gradient
// (c − c_right) + (c − c_upperRight), evaluated with a one-pixel step. It is
// large and positive when (x, y) sits just lower-left of a charge-state
// transition line, because adding an electron drops the sensor current.
func FeatureGradient(src Source, x, y int) float64 {
	c := src.Current(x, y)
	cRight := src.Current(x+1, y)
	cUpperRight := src.Current(x+1, y+1)
	return (c - cRight) + (c - cUpperRight)
}

// Trace records every probed candidate and every chosen transition point of
// one sweep, for diagnostics and for regenerating the paper's Figures 5–7.
type Trace struct {
	Probed []grid.Point // points where the feature gradient was evaluated
	Chosen []grid.Point // argmax point per row/column
}

// RowSweep walks rows bottom-to-top inside the triangle defined by the fixed
// upper-left anchor (left) and a moving lower-right anchor that starts at
// bottom (Algorithm 3 lines 8–12). At each row it probes the pixels whose
// centres lie inside the current triangle, keeps the one with maximal
// feature gradient as a transition point, and shrinks the triangle by moving
// the lower anchor there.
func RowSweep(src Source, left, bottom grid.Point) (Trace, error) {
	if left.Y <= bottom.Y || left.X >= bottom.X {
		return Trace{}, errors.New("sweep: anchors do not form a valid triangle")
	}
	var tr Trace
	moving := bottom
	for y := bottom.Y + 1; y <= left.Y-1; y++ {
		lo, hi := rowSegment(left, moving, y)
		bestX, bestG := 0, math.Inf(-1)
		for x := lo; x <= hi; x++ {
			tr.Probed = append(tr.Probed, grid.Point{X: x, Y: y})
			if g := FeatureGradient(src, x, y); g > bestG {
				bestG = g
				bestX = x
			}
		}
		moving = grid.Point{X: bestX, Y: y}
		tr.Chosen = append(tr.Chosen, moving)
	}
	return tr, nil
}

// rowSegment returns the inclusive pixel range [lo, hi] of row y inside the
// triangle with vertices left, (moving.X, left.Y) and moving. The left edge
// is the hypotenuse from left down to moving; the right edge is x = moving.X.
// If no pixel centre falls inside, the moving anchor's column is probed so
// the anchor path stays connected.
func rowSegment(left, moving grid.Point, y int) (lo, hi int) {
	hi = moving.X
	denom := float64(left.Y - moving.Y)
	xHyp := float64(left.X) + float64(moving.X-left.X)*float64(left.Y-y)/denom
	lo = int(math.Ceil(xHyp))
	if lo < 0 {
		lo = 0
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ColSweep walks columns left-to-right inside the triangle defined by the
// fixed lower-right anchor (bottom) and a moving upper-left anchor that
// starts at left (Algorithm 3 lines 13–18).
func ColSweep(src Source, left, bottom grid.Point) (Trace, error) {
	if left.Y <= bottom.Y || left.X >= bottom.X {
		return Trace{}, errors.New("sweep: anchors do not form a valid triangle")
	}
	var tr Trace
	moving := left
	for x := left.X + 1; x <= bottom.X-1; x++ {
		lo, hi := colSegment(bottom, moving, x)
		bestY, bestG := 0, math.Inf(-1)
		for y := lo; y <= hi; y++ {
			tr.Probed = append(tr.Probed, grid.Point{X: x, Y: y})
			if g := FeatureGradient(src, x, y); g > bestG {
				bestG = g
				bestY = y
			}
		}
		moving = grid.Point{X: x, Y: bestY}
		tr.Chosen = append(tr.Chosen, moving)
	}
	return tr, nil
}

// colSegment returns the inclusive pixel range [lo, hi] of column x inside
// the triangle with vertices moving, (bottom.X, moving.Y) and bottom. The
// lower edge is the hypotenuse from moving down to bottom; the upper edge is
// y = moving.Y.
func colSegment(bottom, moving grid.Point, x int) (lo, hi int) {
	hi = moving.Y
	denom := float64(bottom.X - moving.X)
	yHyp := float64(moving.Y) + float64(bottom.Y-moving.Y)*float64(x-moving.X)/denom
	lo = int(math.Ceil(yHyp))
	if lo < 0 {
		lo = 0
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Sweeps runs both sweeps (Algorithm 3 lines 5–18) and returns the combined
// transition points (row-sweep points first), plus both traces.
func Sweeps(src Source, left, bottom grid.Point) (points []grid.Point, row, col Trace, err error) {
	row, err = RowSweep(src, left, bottom)
	if err != nil {
		return nil, Trace{}, Trace{}, err
	}
	col, err = ColSweep(src, left, bottom)
	if err != nil {
		return nil, Trace{}, Trace{}, err
	}
	points = append(append([]grid.Point{}, row.Chosen...), col.Chosen...)
	return points, row, col, nil
}
