package sweep

import (
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/grid"
)

// synthSource is an analytic CSD: bright background with a small positive
// tilt, a 0.8 step down across the steep line (through (xa, 0), slope
// mSteep) and another across the shallow line (through (0, yb), slope
// mShallow).
type synthSource struct {
	xa, yb           float64
	mSteep, mShallow float64
}

func (s synthSource) Current(x, y int) float64 {
	fx, fy := float64(x), float64(y)
	c := 2.0 + 0.003*(fx+fy)
	if fx > s.xa+fy/s.mSteep { // right of the steep line
		c -= 0.8
	}
	if fy > s.yb+s.mShallow*fx { // above the shallow line
		c -= 0.8
	}
	return c
}

func (s synthSource) steepXAt(y float64) float64   { return s.xa + y/s.mSteep }
func (s synthSource) shallowYAt(x float64) float64 { return s.yb + s.mShallow*x }

func defaultSynth() synthSource {
	return synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
}

func anchorsFor(s synthSource) (left, bottom grid.Point) {
	return grid.Point{X: 1, Y: int(math.Round(s.shallowYAt(1)))},
		grid.Point{X: int(math.Round(s.steepXAt(1))), Y: 1}
}

func TestFeatureGradientFiresAtSteepLine(t *testing.T) {
	s := defaultSynth()
	y := 10
	xLine := int(math.Floor(s.steepXAt(float64(y))))
	atLine := FeatureGradient(s, xLine, y)
	away := FeatureGradient(s, xLine-5, y)
	if atLine <= away {
		t.Errorf("gradient at line %v not above background %v", atLine, away)
	}
	if atLine < 0.8 {
		t.Errorf("gradient at line = %v, want ≥ one step of 0.8", atLine)
	}
}

func TestFeatureGradientFiresAtShallowLine(t *testing.T) {
	s := defaultSynth()
	x := 10
	yLine := int(math.Floor(s.shallowYAt(float64(x))))
	atLine := FeatureGradient(s, x, yLine)
	away := FeatureGradient(s, x, yLine-5)
	if atLine <= away {
		t.Errorf("gradient at shallow line %v not above background %v", atLine, away)
	}
}

func TestRowSweepTracksSteepLine(t *testing.T) {
	s := defaultSynth()
	left, bottom := anchorsFor(s)
	tr, err := RowSweep(s, left, bottom)
	if err != nil {
		t.Fatal(err)
	}
	// Knee is where the lines intersect.
	kneeY := s.shallowYAt(s.steepXAt(0)) // approximate; lines nearly axis-aligned
	for _, p := range tr.Chosen {
		if float64(p.Y) > kneeY-3 {
			continue // above the knee the row sweep is unreliable by design
		}
		want := s.steepXAt(float64(p.Y))
		if math.Abs(float64(p.X)-want) > 1.5 {
			t.Errorf("row %d: chosen x = %d, steep line at %.1f", p.Y, p.X, want)
		}
	}
	if len(tr.Chosen) != left.Y-1-bottom.Y {
		t.Errorf("chose %d points, want %d", len(tr.Chosen), left.Y-1-bottom.Y)
	}
}

func TestColSweepTracksShallowLine(t *testing.T) {
	s := defaultSynth()
	left, bottom := anchorsFor(s)
	tr, err := ColSweep(s, left, bottom)
	if err != nil {
		t.Fatal(err)
	}
	kneeX := s.steepXAt(s.yb)
	for _, p := range tr.Chosen {
		if float64(p.X) > kneeX-3 {
			continue
		}
		want := s.shallowYAt(float64(p.X))
		if math.Abs(float64(p.Y)-want) > 1.5 {
			t.Errorf("col %d: chosen y = %d, shallow line at %.1f", p.X, p.Y, want)
		}
	}
}

func TestTriangleShrinkingKeepsSegmentsSmall(t *testing.T) {
	// On clean data the moving anchor hugs the line, so each row probes only
	// a handful of pixels: far fewer than the full triangle would contain.
	s := defaultSynth()
	left, bottom := anchorsFor(s)
	tr, err := RowSweep(s, left, bottom)
	if err != nil {
		t.Fatal(err)
	}
	rows := left.Y - 1 - bottom.Y
	if avg := float64(len(tr.Probed)) / float64(rows); avg > 6 {
		t.Errorf("average probes per row = %v, triangle shrinking ineffective", avg)
	}
}

func TestSweepsCombined(t *testing.T) {
	s := defaultSynth()
	left, bottom := anchorsFor(s)
	pts, row, col, err := Sweeps(s, left, bottom)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(row.Chosen)+len(col.Chosen) {
		t.Errorf("combined %d points, traces have %d+%d", len(pts), len(row.Chosen), len(col.Chosen))
	}
}

func TestSweepRejectsBadAnchors(t *testing.T) {
	s := defaultSynth()
	if _, err := RowSweep(s, grid.Point{X: 1, Y: 5}, grid.Point{X: 40, Y: 10}); err == nil {
		t.Error("RowSweep accepted left anchor below bottom anchor")
	}
	if _, err := ColSweep(s, grid.Point{X: 50, Y: 40}, grid.Point{X: 10, Y: 1}); err == nil {
		t.Error("ColSweep accepted left anchor right of bottom anchor")
	}
	if _, _, _, err := Sweeps(s, grid.Point{X: 5, Y: 5}, grid.Point{X: 5, Y: 5}); err == nil {
		t.Error("Sweeps accepted coincident anchors")
	}
}

func TestRowSegmentGeometry(t *testing.T) {
	left := grid.Point{X: 0, Y: 20}
	moving := grid.Point{X: 30, Y: 10}
	// Just above the moving anchor the segment hugs its column.
	lo, hi := rowSegment(left, moving, 11)
	if hi != 30 {
		t.Errorf("hi = %d, want 30", hi)
	}
	if lo < 26 || lo > 30 {
		t.Errorf("lo = %d, want near 27 (hypotenuse)", lo)
	}
	// Near the fixed anchor the segment approaches its column.
	lo19, _ := rowSegment(left, moving, 19)
	if lo19 > 4 {
		t.Errorf("lo at row 19 = %d, want near hypotenuse ≈ 3", lo19)
	}
	// lo never exceeds hi even in degenerate geometry.
	lo2, hi2 := rowSegment(grid.Point{X: 29, Y: 20}, moving, 19)
	if lo2 > hi2 {
		t.Errorf("lo %d > hi %d", lo2, hi2)
	}
}

func TestColSegmentGeometry(t *testing.T) {
	bottom := grid.Point{X: 40, Y: 0}
	moving := grid.Point{X: 5, Y: 30}
	lo, hi := colSegment(bottom, moving, 6)
	if hi != 30 {
		t.Errorf("hi = %d, want 30", hi)
	}
	if lo < 26 || lo > 30 {
		t.Errorf("lo = %d, want just below 30", lo)
	}
}

func TestSweepWithNoiseStillFindsMostPoints(t *testing.T) {
	s := defaultSynth()
	noisy := noisySource{s: s}
	left, bottom := anchorsFor(s)
	tr, err := RowSweep(noisy, left, bottom)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	total := 0
	kneeY := s.shallowYAt(s.steepXAt(0))
	for _, p := range tr.Chosen {
		if float64(p.Y) > kneeY-3 {
			continue
		}
		total++
		if math.Abs(float64(p.X)-s.steepXAt(float64(p.Y))) <= 2 {
			good++
		}
	}
	if total == 0 {
		t.Fatal("no points below knee")
	}
	if frac := float64(good) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of noisy sweep points near the line", frac*100)
	}
}

// noisySource adds deterministic pseudo-noise (hash of coordinates) at 15%
// of the step size.
type noisySource struct {
	s synthSource
}

func (n noisySource) Current(x, y int) float64 {
	h := uint64(x)*2654435761 ^ uint64(y)*40503
	h ^= h >> 13
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	u := float64(h%10000)/10000 - 0.5
	return n.s.Current(x, y) + 0.12*2*u
}
