package rays

import (
	"sort"
	"testing"

	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/xrand"
)

// TestSelectKthMatchesSort across random inputs and every rank.
func TestSelectKthMatchesSort(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			if rng.Intn(4) == 0 && i > 0 {
				xs[i] = xs[i-1] // duplicates exercise the 3-way ties
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for k := 0; k < n; k++ {
			work := append([]float64(nil), xs...)
			if got := selectKth(work, k); got != sorted[k] {
				t.Fatalf("trial %d: selectKth(k=%d) = %v, want %v (input %v)",
					trial, k, got, sorted[k], xs)
			}
		}
	}
}

// naiveSplitCost is the pre-prefix-sum reference: fit both segments with
// TLSLine and sum squared perpendicular distances.
func naiveSplitCost(crossings []fitting.Vec2, k int) (float64, bool) {
	l1, err1 := fitting.TLSLine(crossings[:k])
	l2, err2 := fitting.TLSLine(crossings[k:])
	if err1 != nil || err2 != nil {
		return 0, false
	}
	var cost float64
	for _, p := range crossings[:k] {
		d := l1.Dist(p)
		cost += d * d
	}
	for _, p := range crossings[k:] {
		d := l2.Dist(p)
		cost += d * d
	}
	return cost, true
}

// TestSplitAndFitMatchesNaiveChangepoint: the prefix-sum scan must pick the
// same changepoint the O(n²) re-fitting scan picked, on noisy two-line
// crossing sets.
func TestSplitAndFitMatchesNaiveChangepoint(t *testing.T) {
	rng := xrand.New(23)
	cfg := Config{}
	cfg.fillDefaults()
	for trial := 0; trial < 50; trial++ {
		// Steep cluster then shallow cluster, in fan order, with jitter.
		var crossings []fitting.Vec2
		nSteep := cfg.MinPerLine + rng.Intn(8)
		nShallow := cfg.MinPerLine + rng.Intn(8)
		for i := 0; i < nSteep; i++ {
			y := float64(i) * 2
			crossings = append(crossings, fitting.Vec2{
				X: 60 - 0.12*y + 0.3*rng.NormFloat64(),
				Y: y + 0.3*rng.NormFloat64(),
			})
		}
		for i := 0; i < nShallow; i++ {
			x := float64(nShallow-i) * 3
			crossings = append(crossings, fitting.Vec2{
				X: x + 0.3*rng.NormFloat64(),
				Y: 55 - 0.1*x + 0.3*rng.NormFloat64(),
			})
		}
		// Reference scan.
		bestCost, bestK := 1e300, -1
		for k := cfg.MinPerLine; k <= len(crossings)-cfg.MinPerLine; k++ {
			if c, ok := naiveSplitCost(crossings, k); ok && c < bestCost {
				bestCost, bestK = c, k
			}
		}
		steep, shallow, err := splitAndFit(crossings, cfg)
		if err != nil {
			t.Fatalf("trial %d: splitAndFit failed: %v", trial, err)
		}
		if bestK != nSteep {
			// The reference itself disagrees with construction only when the
			// jitter genuinely blurs the corner; accept the reference's pick.
			t.Logf("trial %d: reference picked %d (constructed %d)", trial, bestK, nSteep)
		}
		// splitAndFit trims outliers after splitting, so compare the split
		// point itself: the steep set size before trimming is bestK. Recover
		// it from the union of returned points being ordered.
		if got := len(steep.pts) + len(shallow.pts); got > len(crossings) {
			t.Fatalf("trial %d: more fitted points than crossings", trial)
		}
		// Rerun the prefix-sum scan in isolation to compare ks directly.
		if k := bestChangepoint(crossings, cfg); k != bestK {
			t.Fatalf("trial %d: prefix-sum changepoint %d != naive %d", trial, k, bestK)
		}
	}
}
