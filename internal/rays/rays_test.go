package rays

import (
	"errors"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

// synthSource is the shared analytic CSD with the standard two lines.
type synthSource struct {
	xa, yb           float64
	mSteep, mShallow float64
	probes           int
}

func (s *synthSource) Current(x, y int) float64 {
	s.probes++
	fx, fy := float64(x), float64(y)
	c := 2.0 + 0.004*(fx+fy)
	if fx > s.xa+fy/s.mSteep {
		c -= 0.8
	}
	if fy > s.yb+s.mShallow*fx {
		c -= 0.8
	}
	return c
}

func squareWin(n int) csd.Window { return csd.NewSquareWindow(0, 0, float64(n), n) }

func angleErr(got, want float64) float64 {
	return math.Abs(math.Atan(got)-math.Atan(want)) * 180 / math.Pi
}

func TestExtractClean(t *testing.T) {
	s := &synthSource{xa: 66, yb: 62, mSteep: -8, mShallow: -0.12}
	res, err := Extract(s, squareWin(100), Config{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if e := angleErr(res.SteepSlope, -8); e > 3.5 {
		t.Errorf("steep %v (Δ%.2f°)", res.SteepSlope, e)
	}
	if e := angleErr(res.ShallowSlope, -0.12); e > 3.5 {
		t.Errorf("shallow %v (Δ%.2f°)", res.ShallowSlope, e)
	}
	if len(res.Crossings) < 12 {
		t.Errorf("only %d ray crossings", len(res.Crossings))
	}
}

func TestExtractGeometries(t *testing.T) {
	for _, tc := range []struct{ xa, yb, ms, mh float64 }{
		{60, 68, -5.5, -0.2},
		{72, 58, -10, -0.08},
	} {
		s := &synthSource{xa: tc.xa, yb: tc.yb, mSteep: tc.ms, mShallow: tc.mh}
		res, err := Extract(s, squareWin(100), Config{})
		if err != nil {
			t.Errorf("geometry %+v: %v", tc, err)
			continue
		}
		if e := angleErr(res.SteepSlope, tc.ms); e > 3.5 {
			t.Errorf("geometry %+v: steep %v (Δ%.2f°)", tc, res.SteepSlope, e)
		}
		if e := angleErr(res.ShallowSlope, tc.mh); e > 3.5 {
			t.Errorf("geometry %+v: shallow %v (Δ%.2f°)", tc, res.ShallowSlope, e)
		}
	}
}

func TestExtractOnSimulatedDevice(t *testing.T) {
	phys, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   -7.5,
		ShallowSlope: -0.13,
		SteepPoint:   [2]float64{33, 0},
		ShallowPoint: [2]float64{0, 31},
		EC1:          4, EC2: 4, ECm: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := &device.DoubleDot{Phys: phys, Sens: sensor.DefaultDoubleDot(0.47, 0.45, 100)}
	win := csd.NewSquareWindow(0, 0, 50, 100)
	inst := device.NewSimInstrument(dev, device.DefaultDwell, win.StepV1(), win.StepV2())
	res, err := Extract(csd.PixelSource{Src: inst, Win: win}, win, Config{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if e := angleErr(res.SteepSlope, -7.5); e > 3.5 {
		t.Errorf("steep %v (Δ%.2f°)", res.SteepSlope, e)
	}
	// Rays probe more than the sweeps but still far less than a full CSD.
	if probes := inst.Stats().UniqueProbes; probes > 5000 {
		t.Errorf("rays probed %d of 10000", probes)
	}
}

func TestFailsOnFeaturelessData(t *testing.T) {
	s := &synthSource{xa: 1e9, yb: 1e9, mSteep: -8, mShallow: -0.12}
	_, err := Extract(s, squareWin(100), Config{})
	if err == nil {
		t.Fatal("extraction succeeded without transition lines")
	}
	if !errors.Is(err, ErrNoLine) && !errors.Is(err, ErrNoOrigin) && !errors.Is(err, ErrNonPhysical) {
		t.Errorf("error %v is not a sentinel", err)
	}
}

func TestDetectsFaintLine(t *testing.T) {
	// Unlike the Canny baseline's ratio thresholds, the per-ray σ-based drop
	// detector works at any contrast on clean data.
	s := &faintSource{synthSource{xa: 66, yb: 62, mSteep: -8, mShallow: -0.12}, 0.05}
	res, err := Extract(s, squareWin(100), Config{})
	if err != nil {
		t.Fatalf("faint-line extraction failed: %v", err)
	}
	if e := angleErr(res.ShallowSlope, -0.12); e > 3.5 {
		t.Errorf("faint shallow slope %v (Δ%.2f°)", res.ShallowSlope, e)
	}
}

// faintSource scales the shallow line's contrast.
type faintSource struct {
	s     synthSource
	faint float64
}

func (f *faintSource) Current(x, y int) float64 {
	fx, fy := float64(x), float64(y)
	c := 2.0 + 0.004*(fx+fy)
	if fx > f.s.xa+fy/f.s.mSteep {
		c -= 0.8
	}
	if fy > f.s.yb+f.s.mShallow*fx {
		c -= 0.8 * f.faint
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	s := &synthSource{xa: 66, yb: 62, mSteep: -8, mShallow: -0.12}
	if _, err := Extract(s, csd.Window{}, Config{}); err == nil {
		t.Error("accepted invalid window")
	}
}

func TestSuccessiveSigma(t *testing.T) {
	flat := []float64{1, 1, 1, 1, 1}
	if got := successiveSigma(flat); got != 0 {
		t.Errorf("sigma of constant = %v", got)
	}
	if got := successiveSigma([]float64{0, 1}); got != 0 {
		t.Errorf("sigma of two samples = %v", got)
	}
	// A linear ramp has zero second differences: the estimator must not
	// mistake a smooth background for noise (this is what keeps faint lines
	// detectable).
	ramp := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	if got := successiveSigma(ramp); got > 1e-12 {
		t.Errorf("sigma of linear ramp = %v, want 0", got)
	}
	// An alternating 0/1 sequence has |second difference| = 2 everywhere.
	alt := []float64{0, 1, 0, 1, 0, 1, 0, 1}
	if got := successiveSigma(alt); math.Abs(got-2/1.652) > 1e-9 {
		t.Errorf("sigma of 0/1 alternation = %v, want %v", got, 2/1.652)
	}
}

func TestOriginInsideZeroRegion(t *testing.T) {
	s := &synthSource{xa: 66, yb: 62, mSteep: -8, mShallow: -0.12}
	o, err := findOrigin(s, 100, 100, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if float64(o.X) > s.xa || float64(o.Y) > s.yb {
		t.Errorf("origin %v outside the (0,0) region", o)
	}
}
