// Package rays implements a ray-based virtual gate extraction, the
// physics-informed alternative of the paper's related work (Ziegler et al.,
// "Tuning arrays with rays", Phys. Rev. Applied 20, 034067 (2023)),
// reimplemented on this repository's substrate as a second comparison point
// for the fast method.
//
// The idea: from a point inside the (0,0) charge region, cast a fan of rays
// toward the upper right and walk each one until the sensor current drops by
// more than the local noise floor — a charge-state transition. The crossing
// points are then split between the two transition lines and each set is fit
// by total least squares. Compared with the paper's sweeps, rays probe the
// interior of the (0,0) region on every cast (no shrinking-triangle reuse),
// so they need more probes for the same line coverage.
package rays

import (
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Source provides sensor current at integer pixel coordinates.
type Source interface {
	Current(x, y int) float64
}

// Sentinel errors.
var (
	// ErrNoOrigin: could not place the ray origin inside the (0,0) region.
	ErrNoOrigin = errors.New("rays: could not locate a ray origin")
	// ErrNoLine: too few transition crossings to establish both lines.
	ErrNoLine = errors.New("rays: could not establish both transition lines")
	// ErrNonPhysical: fitted lines violate the device-physics prior.
	ErrNonPhysical = errors.New("rays: extracted lines violate the physics prior")
)

// Package defaults, substituted for zero Config fields.
const (
	DefaultNumRays   = 24
	DefaultDropSigma = 6.0
)

// Config tunes the method; the zero value uses the defaults below.
type Config struct {
	NumRays       int     // rays in the fan across (0°, 90°); default DefaultNumRays
	OriginBackoff float64 // origin = backoff × brightest diagonal point; default 0.55
	DropSigma     float64 // detection threshold in units of the per-ray noise σ; default DefaultDropSigma
	MinPerLine    int     // crossings required per line; default 4
}

func (c *Config) fillDefaults() {
	if c.NumRays == 0 {
		c.NumRays = DefaultNumRays
	}
	if c.OriginBackoff == 0 {
		c.OriginBackoff = 0.55
	}
	if c.DropSigma == 0 {
		c.DropSigma = DefaultDropSigma
	}
	if c.MinPerLine == 0 {
		c.MinPerLine = 4
	}
}

// Result is a completed ray extraction.
type Result struct {
	Origin     grid.Point
	Crossings  []fitting.Vec2 // transition points found by the rays
	SteepSet   []fitting.Vec2 // final cluster assignment
	ShallowSet []fitting.Vec2

	SteepSlopePx   float64
	ShallowSlopePx float64
	SteepSlope     float64 // dV2/dV1
	ShallowSlope   float64

	Matrix virtualgate.Mat2
}

// Extract runs the ray method over the window through src.
func Extract(src Source, win csd.Window, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if err := win.Validate(); err != nil {
		return nil, err
	}
	w, h := win.Cols, win.Rows
	res := &Result{}

	origin, err := findOrigin(src, w, h, cfg.OriginBackoff)
	if err != nil {
		return res, err
	}
	res.Origin = origin

	// Fan of rays across the open upper-right quadrant, excluding the axes.
	for i := 0; i < cfg.NumRays; i++ {
		theta := math.Pi / 2 * (float64(i) + 0.5) / float64(cfg.NumRays)
		if p, ok := castRay(src, origin, theta, w, h, cfg.DropSigma); ok {
			res.Crossings = append(res.Crossings, p)
		}
	}
	if len(res.Crossings) < 2*cfg.MinPerLine {
		return res, fmt.Errorf("%w: only %d crossings", ErrNoLine, len(res.Crossings))
	}

	steep, shallow, err := splitAndFit(res.Crossings, cfg)
	if err != nil {
		return res, err
	}
	res.SteepSet, res.ShallowSet = steep.pts, shallow.pts
	res.SteepSlopePx = steep.line.Slope()
	res.ShallowSlopePx = shallow.line.Slope()
	res.SteepSlope = win.PixelSlopeToVoltage(res.SteepSlopePx)
	res.ShallowSlope = win.PixelSlopeToVoltage(res.ShallowSlopePx)
	if !(res.SteepSlope < -1) || !(res.ShallowSlope > -1 && res.ShallowSlope < 0) {
		return res, fmt.Errorf("%w: steep=%.3f shallow=%.3f", ErrNonPhysical, res.SteepSlope, res.ShallowSlope)
	}
	m, err := virtualgate.FromSlopes(res.SteepSlope, res.ShallowSlope)
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrNonPhysical, err)
	}
	res.Matrix = m
	return res, nil
}

// findOrigin probes the window diagonal and backs off from the brightest
// point toward the lower-left corner, which lands inside the (0,0) region on
// sensor-flank devices.
func findOrigin(src Source, w, h int, backoff float64) (grid.Point, error) {
	const probes = 10
	best := math.Inf(-1)
	var bright grid.Point
	for i := 0; i < probes; i++ {
		x := int(math.Round(float64(i) * float64(w-1) / float64(probes-1)))
		y := int(math.Round(float64(i) * float64(h-1) / float64(probes-1)))
		if c := src.Current(x, y); c > best {
			best = c
			bright = grid.Point{X: x, Y: y}
		}
	}
	o := grid.Point{
		X: int(math.Round(float64(bright.X) * backoff)),
		Y: int(math.Round(float64(bright.Y) * backoff)),
	}
	if o.X < 1 || o.Y < 1 || o.X >= w-2 || o.Y >= h-2 {
		return grid.Point{}, fmt.Errorf("%w: origin %v out of window", ErrNoOrigin, o)
	}
	return o, nil
}

// castRay walks from origin at angle theta (radians from the +x axis),
// probing one pixel per step, and returns the first point where the current
// falls more than dropSigma noise units below its running maximum.
func castRay(src Source, origin grid.Point, theta float64, w, h int, dropSigma float64) (fitting.Vec2, bool) {
	dx, dy := math.Cos(theta), math.Sin(theta)
	// Noise floor from the first samples along the ray (median absolute
	// successive difference, scaled to σ).
	const warmup = 8
	var samples []float64
	step := 0
	for {
		x := float64(origin.X) + float64(step)*dx
		y := float64(origin.Y) + float64(step)*dy
		xi, yi := int(math.Round(x)), int(math.Round(y))
		if xi >= w || yi >= h {
			return fitting.Vec2{}, false
		}
		samples = append(samples, src.Current(xi, yi))
		if len(samples) >= warmup {
			break
		}
		step++
	}
	sigma := successiveSigma(samples)
	thresh := dropSigma * sigma
	if minThresh := 1e-6; thresh < minThresh {
		thresh = minThresh
	}
	// Walk outward against the running maximum (so a rising background
	// cannot fire) and require the drop to persist for a second sample: a
	// charge transition is a persistent step, a noise spike is not.
	runMax := samples[0]
	confirm := func(s int) (fitting.Vec2, bool) {
		x := float64(origin.X) + float64(s+1)*dx
		y := float64(origin.Y) + float64(s+1)*dy
		xi, yi := int(math.Round(x)), int(math.Round(y))
		if xi >= w || yi >= h {
			return fitting.Vec2{}, false
		}
		if runMax-src.Current(xi, yi) > thresh {
			cx := float64(origin.X) + (float64(s)-0.5)*dx
			cy := float64(origin.Y) + (float64(s)-0.5)*dy
			return fitting.Vec2{X: cx, Y: cy}, true
		}
		return fitting.Vec2{}, false
	}
	for i := 1; i < len(samples); i++ {
		if runMax-samples[i] > thresh {
			if p, ok := confirm(i); ok {
				return p, true
			}
		}
		runMax = math.Max(runMax, samples[i])
	}
	for step = warmup; ; step++ {
		x := float64(origin.X) + float64(step)*dx
		y := float64(origin.Y) + float64(step)*dy
		xi, yi := int(math.Round(x)), int(math.Round(y))
		if xi >= w || yi >= h {
			return fitting.Vec2{}, false
		}
		v := src.Current(xi, yi)
		if runMax-v > thresh {
			if p, ok := confirm(step); ok {
				return p, true
			}
		}
		runMax = math.Max(runMax, v)
	}
}

// successiveSigma estimates the noise σ from the median absolute SECOND
// difference, which cancels the smooth background ramp along a ray so only
// genuine fluctuations count. For white noise the second difference is
// N(0, 6σ²), whose median absolute value is 0.6745·√6·σ ≈ 1.652·σ.
func successiveSigma(xs []float64) float64 {
	if len(xs) < 3 {
		return 0
	}
	diffs := make([]float64, 0, len(xs)-2)
	for i := 2; i < len(xs); i++ {
		diffs = append(diffs, math.Abs(xs[i]-2*xs[i-1]+xs[i-2]))
	}
	med := selectKth(diffs, len(diffs)/2)
	return med / 1.652
}

// selectKth returns the k-th smallest element (0-based) of xs, partially
// reordering it in place — quickselect with median-of-three pivoting, O(n)
// expected instead of the O(n log n) full sort a median needs none of.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot, moved to xs[lo].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		xs[lo], xs[mid] = xs[mid], xs[lo]
		pivot := xs[lo]
		// Hoare partition.
		i, j := lo, hi+1
		for {
			for {
				i++
				if i > hi || xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if xs[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		xs[lo], xs[j] = xs[j], xs[lo]
		switch {
		case j == k:
			return xs[k]
		case j < k:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
	return xs[k]
}

type fitSet struct {
	pts  []fitting.Vec2
	line fitting.ParamLine
}

// splitAndFit separates the crossings into the steep and shallow clusters.
// Crossings arrive ordered by ray angle, so the fan hits the steep line
// first and the shallow line after some changepoint; the split is found by
// minimising the total TLS residual over all changepoints, then each cluster
// is refit after trimming gross outliers (rays that latched onto the
// honeycomb continuation lines near the triple point).
//
// The scan runs on prefix sums of the second moments: a segment's TLS
// residual is the smallest eigenvalue of its centred scatter matrix, which
// five prefix arrays recover in O(1) per changepoint. That makes the whole
// scan O(n) where re-fitting both sides from scratch per split was O(n²).
func splitAndFit(crossings []fitting.Vec2, cfg Config) (steep, shallow fitSet, err error) {
	bestK := bestChangepoint(crossings, cfg)
	if bestK < 0 {
		return steep, shallow, fmt.Errorf("%w: no valid changepoint over %d crossings", ErrNoLine, len(crossings))
	}
	steep.pts = append([]fitting.Vec2(nil), crossings[:bestK]...)
	shallow.pts = append([]fitting.Vec2(nil), crossings[bestK:]...)
	if steep.pts, steep.line, err = fitTrimmed(steep.pts, cfg.MinPerLine); err != nil {
		return steep, shallow, err
	}
	if shallow.pts, shallow.line, err = fitTrimmed(shallow.pts, cfg.MinPerLine); err != nil {
		return steep, shallow, err
	}
	return steep, shallow, nil
}

// bestChangepoint scans every admissible split of the fan-ordered crossings
// and returns the one minimising the summed TLS residual of the two
// segments, or -1 when no split admits two line fits.
func bestChangepoint(crossings []fitting.Vec2, cfg Config) int {
	n := len(crossings)
	sx := make([]float64, n+1)
	sy := make([]float64, n+1)
	sxx := make([]float64, n+1)
	sxy := make([]float64, n+1)
	syy := make([]float64, n+1)
	for i, p := range crossings {
		sx[i+1] = sx[i] + p.X
		sy[i+1] = sy[i] + p.Y
		sxx[i+1] = sxx[i] + p.X*p.X
		sxy[i+1] = sxy[i] + p.X*p.Y
		syy[i+1] = syy[i] + p.Y*p.Y
	}
	// segCost returns the TLS residual sum of crossings[i:j], and whether
	// the segment admits a line fit at all (at least two distinct points).
	segCost := func(i, j int) (float64, bool) {
		m := float64(j - i)
		if j-i < 2 {
			return 0, false
		}
		cx := (sx[j] - sx[i]) / m
		cy := (sy[j] - sy[i]) / m
		vxx := (sxx[j] - sxx[i]) - m*cx*cx
		vxy := (sxy[j] - sxy[i]) - m*cx*cy
		vyy := (syy[j] - syy[i]) - m*cy*cy
		if vxx <= 0 && vyy <= 0 {
			return 0, false // coincident points: no direction defined
		}
		tr := vxx + vyy
		det := vxx*vyy - vxy*vxy
		disc := tr*tr/4 - det
		if disc < 0 {
			disc = 0
		}
		lmin := tr/2 - math.Sqrt(disc)
		if lmin < 0 {
			lmin = 0
		}
		return lmin, true
	}
	bestCost := math.Inf(1)
	bestK := -1
	for k := cfg.MinPerLine; k <= n-cfg.MinPerLine; k++ {
		c1, ok1 := segCost(0, k)
		c2, ok2 := segCost(k, n)
		if !ok1 || !ok2 {
			continue
		}
		if cost := c1 + c2; cost < bestCost {
			bestCost = cost
			bestK = k
		}
	}
	return bestK
}

// fitTrimmed fits a TLS line and iteratively drops outliers: each round
// removes points farther than max(2.5 px, 3×RMS) and refits, which peels
// away false crossings (noise-triggered ray stops) sitting far from the
// transition line.
func fitTrimmed(pts []fitting.Vec2, minPts int) ([]fitting.Vec2, fitting.ParamLine, error) {
	line, err := fitting.TLSLine(pts)
	if err != nil {
		return pts, line, fmt.Errorf("%w: %v", ErrNoLine, err)
	}
	kept := append([]fitting.Vec2(nil), pts...)
	for round := 0; round < 3; round++ {
		var ss float64
		for _, p := range kept {
			d := line.Dist(p)
			ss += d * d
		}
		rms := math.Sqrt(ss / float64(len(kept)))
		cut := math.Max(3*rms, 2.5)
		next := kept[:0:0]
		for _, p := range kept {
			if line.Dist(p) <= cut {
				next = append(next, p)
			}
		}
		if len(next) < minPts {
			return kept, line, fmt.Errorf("%w: only %d inliers after trimming", ErrNoLine, len(next))
		}
		done := len(next) == len(kept)
		kept = next
		refit, err := fitting.TLSLine(kept)
		if err != nil {
			return kept, line, nil // keep the previous fit
		}
		line = refit
		if done {
			break
		}
	}
	return kept, line, nil
}
