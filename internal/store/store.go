package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// Kind namespaces journal records. State kinds are log-structured: a later
// record with the same key supersedes the earlier one, and compaction keeps
// only the survivor. Audit kinds are append-only event logs, retained up to
// the AuditCap most recent records.
type Kind uint8

// kindEpoch is the store's internal compaction-epoch marker: the first
// frame of every snapshot and of every freshly truncated log records the
// compaction generation that produced it. On open, a log whose epoch does
// not match the snapshot's is a stale pre-compaction log left behind by a
// crash between the snapshot rename and the log truncation; its records
// are already in the snapshot, so it is discarded instead of replayed —
// replaying it would duplicate every append-only audit record.
const kindEpoch Kind = 0

// kindTombstone is the store's internal deletion marker: the frame data
// is the target kind (one byte) followed by the target key. Tombstones
// live only in the log — a snapshot is rewritten from live state, so
// compaction erases both the deleted records and the marker. Shard
// rebalance is the writer: records shipped to another shard's journal
// are tombstoned in the source so exactly one shard owns each key.
const kindTombstone Kind = 255

// The record kinds the repository persists.
const (
	// KindCacheEntry is one extraction-service result-cache entry; the key
	// is the canonical request hash, the data a service cacheRecord (the
	// normalized request plus its result).
	KindCacheEntry Kind = 1
	// KindFleetDevice is one fleet device's full calibration state, keyed by
	// device ID.
	KindFleetDevice Kind = 2
	// KindFleetClock is the fleet manager's clock, budget window and
	// fleet-wide counters; the key is empty.
	KindFleetClock Kind = 3
	// KindFleetEvent is one fleet calibration-history event (audit log),
	// keyed by device ID. Unlike the in-memory history ring these are never
	// superseded, only bounded by AuditCap.
	KindFleetEvent Kind = 4
	// KindChainPair is one pair result of a persisted chain extraction,
	// keyed by "<request hash>/<pair index>" — the per-pair journal record
	// behind a chain job's cache entry, so individual pair matrices are
	// addressable (and auditable) without decoding the whole chain result.
	KindChainPair Kind = 5
	// KindSurrogateModel is one trained surrogate twin
	// (internal/surrogate.Model.Encode), keyed by the service's device key —
	// "sim/<spec hash>" or "chain/<spec hash>/<pair index>". A restarted
	// daemon warm-starts its twins from these instead of retraining from
	// traces.
	KindSurrogateModel Kind = 6
	// KindSpan is one telemetry span tree (telemetry.Span.Encode) keyed by
	// the request hash of the extraction it times — the newest tree per
	// request supersedes older ones, and `vgxreplay -spans` dumps them.
	KindSpan Kind = 7
	// KindAlertEvent is one alert firing/resolved transition (audit log),
	// keyed by rule name, data an internal/alert.Event. A restarted daemon
	// replays these so an alert that was firing at kill -9 resumes firing
	// instead of re-announcing; `vgxreplay -alerts` dumps the history.
	KindAlertEvent Kind = 8
)

// Audit reports whether records of this kind accumulate as an event log
// instead of superseding by key.
func (k Kind) Audit() bool { return k == KindFleetEvent || k == KindAlertEvent }

// Record is one journal entry.
type Record struct {
	Kind Kind
	Key  string
	Data []byte
}

// Options tunes a Store; the zero value is production-reasonable.
type Options struct {
	// CompactEvery is the number of appended records between automatic
	// compactions (snapshot rewrite + log truncation); default 4096.
	CompactEvery int
	// AuditCap bounds the retained records of each audit kind; default 65536.
	AuditCap int
}

func (o *Options) fillDefaults() {
	if o.CompactEvery <= 0 {
		o.CompactEvery = 4096
	}
	if o.AuditCap <= 0 {
		o.AuditCap = 65536
	}
}

// Stats is a snapshot of the store's accounting.
type Stats struct {
	Records        int   `json:"records"`        // live records across all kinds
	Appends        int64 `json:"appends"`        // records appended this process
	Compactions    int64 `json:"compactions"`    // snapshot rewrites this process
	LogBytes       int64 `json:"logBytes"`       // current journal.log size
	RecoveredBytes int64 `json:"recoveredBytes"` // torn tail truncated at open
	LoadedRecords  int   `json:"loadedRecords"`  // records restored at open
}

// entry is one live or superseded in-memory record slot.
type entry struct {
	rec  Record
	dead bool
}

// kindState is the in-memory image of one kind's records, in append order
// with superseded state-kind entries marked dead until the slice is
// compacted in place.
type kindState struct {
	entries []entry
	index   map[string]int // state kinds only: key -> live slot
	dead    int
}

// Store is a durable record journal. All methods are safe for concurrent
// use. Appends go straight to the log file (one write syscall per record, no
// user-space buffering), so a killed process loses at most the record being
// written when it died — and recovery truncates that torn tail.
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	log     *os.File
	logSize int64
	pending int // appends since the last compaction
	epoch   uint64
	buf     []byte
	kinds   map[Kind]*kindState
	stats   Stats
	closed  bool
	met     *Metrics
}

// Metrics mirrors the store's accounting into a telemetry registry:
// append count and latency, compactions, and the journal's current size
// in bytes and live records. Attach with SetMetrics before traffic.
type Metrics struct {
	Appends       *telemetry.Counter
	Compactions   *telemetry.Counter
	AppendSeconds *telemetry.Histogram
	LogBytes      *telemetry.Gauge
	Records       *telemetry.Gauge
}

// NewMetrics registers the vgx_store_* family set on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Appends:       reg.Counter("vgx_store_appends_total", "Records appended to the journal this process."),
		Compactions:   reg.Counter("vgx_store_compactions_total", "Snapshot rewrites this process."),
		AppendSeconds: reg.Histogram("vgx_store_append_seconds", "Latency of one journal append (write syscall included).", telemetry.SecondsBuckets),
		LogBytes:      reg.Gauge("vgx_store_log_bytes", "Current journal.log size in bytes."),
		Records:       reg.Gauge("vgx_store_records", "Live records across all kinds."),
	}
}

// SetMetrics attaches m; nil detaches. The gauges are primed from the
// current state so a warm-started store reports its recovered size
// immediately.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
	if m != nil {
		m.LogBytes.Set(float64(s.logSize))
		m.Records.Set(float64(s.liveLocked()))
	}
}

// liveLocked counts live records across kinds; O(number of kinds).
func (s *Store) liveLocked() int {
	n := 0
	for _, ks := range s.kinds {
		n += len(ks.entries) - ks.dead
	}
	return n
}

// epochRecord renders the compaction-epoch marker frame.
func epochRecord(epoch uint64) []byte {
	return appendRecordPayload(nil, Record{Kind: kindEpoch, Data: binary.AppendUvarint(nil, epoch)})
}

func (s *Store) snapPath() string { return filepath.Join(s.dir, "journal.snap") }
func (s *Store) logPath() string  { return filepath.Join(s.dir, "journal.log") }

// Open loads (or initialises) the store at dir: the snapshot is loaded
// first, then the log is replayed over it. A torn tail in either file — the
// signature of a crash mid-write — is truncated and recovery proceeds with
// the clean prefix; only a wrong magic or version fails.
func Open(dir string, opt Options) (*Store, error) {
	opt.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opt: opt, kinds: make(map[Kind]*kindState)}
	if err := s.loadFile(s.snapPath(), false); err != nil {
		return nil, err
	}
	if err := s.loadFile(s.logPath(), true); err != nil {
		return nil, err
	}
	s.stats.LoadedRecords = s.liveCount()

	f, err := os.OpenFile(s.logPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if st.Size() < int64(fileHeaderLen) {
		// Fresh log (or one discarded during load): stamp the header and,
		// past the first compaction, the epoch marker that ties it to the
		// snapshot (epoch 0 is implicit for a never-compacted store).
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		buf := AppendFileHeader(nil, JournalMagic)
		if s.epoch > 0 {
			buf = AppendFrame(buf, epochRecord(s.epoch))
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s.log = f
	if s.logSize, err = f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// loadFile replays one journal file into the in-memory state. isLog marks
// the append log, which gets two extra behaviours: a torn tail is
// physically truncated (so the append offset after recovery sits at the
// last clean frame), and the whole file is discarded unless its epoch
// marker matches the snapshot's — a mismatched log is the pre-compaction
// leftover of a crash between the snapshot rename and the log truncation,
// and its records (including the append-only audit kinds) are already in
// the snapshot.
func (s *Store) loadFile(path string, isLog bool) error {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	rest, err := CheckFileHeader(b, JournalMagic)
	if errors.Is(err, ErrTorn) {
		// A partial header: everything written is gone, recover to empty.
		if isLog {
			s.stats.RecoveredBytes += int64(len(b))
			return os.Remove(path)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %s: %w", filepath.Base(path), err)
	}

	// Decode every clean frame first; nothing is applied until the log's
	// epoch has been checked against the snapshot's.
	var recs []Record
	var fileEpoch uint64
	good := int64(fileHeaderLen)
	torn := int64(0)
	for {
		payload, next, err := NextFrame(rest)
		if err != nil {
			torn = int64(len(rest)) // torn tail: keep the clean prefix
			break
		}
		if payload == nil {
			break
		}
		rec, err := decodeRecordPayload(payload)
		if err != nil {
			// A frame that passed its CRC but does not decode is corruption,
			// not a torn append; treat it like a torn tail all the same so a
			// restart never fails on it.
			torn = int64(len(rest))
			break
		}
		if rec.Kind == kindEpoch {
			if e, n := binary.Uvarint(rec.Data); n > 0 && good == int64(fileHeaderLen) {
				fileEpoch = e
			}
		} else {
			rec.Data = append([]byte(nil), rec.Data...)
			recs = append(recs, rec)
		}
		good += int64(len(rest) - len(next))
		rest = next
	}

	if isLog && fileEpoch != s.epoch {
		// Stale log from before the compaction that produced the loaded
		// snapshot (or one that lost its epoch marker to a torn tail):
		// every record is already in the snapshot, so replaying it would
		// duplicate the audit kinds. Drop it; Open restarts the log.
		s.stats.RecoveredBytes += int64(len(b))
		return os.Remove(path)
	}
	if !isLog {
		s.epoch = fileEpoch
	}
	for _, rec := range recs {
		s.apply(rec)
	}
	if torn > 0 {
		s.stats.RecoveredBytes += torn
		if isLog {
			if terr := os.Truncate(path, good); terr != nil {
				return fmt.Errorf("store: truncating torn tail: %w", terr)
			}
		}
	}
	return nil
}

// apply merges one record into the in-memory state. Caller holds mu (or is
// single-threaded in Open).
func (s *Store) apply(rec Record) {
	if rec.Kind == kindTombstone {
		if len(rec.Data) >= 1 {
			s.applyDelete(Kind(rec.Data[0]), string(rec.Data[1:]))
		}
		return
	}
	ks := s.kinds[rec.Kind]
	if ks == nil {
		ks = &kindState{}
		if !rec.Kind.Audit() {
			ks.index = make(map[string]int)
		}
		s.kinds[rec.Kind] = ks
	}
	if rec.Kind.Audit() {
		ks.entries = append(ks.entries, entry{rec: rec})
		// Amortised trim: drop the oldest half-cap once the slice doubles.
		if len(ks.entries) > 2*s.opt.AuditCap {
			keep := ks.entries[len(ks.entries)-s.opt.AuditCap:]
			ks.entries = append(ks.entries[:0], keep...)
		}
		return
	}
	if i, ok := ks.index[rec.Key]; ok {
		ks.entries[i].dead = true
		ks.dead++
	}
	ks.entries = append(ks.entries, entry{rec: rec})
	ks.index[rec.Key] = len(ks.entries) - 1
	if ks.dead > len(ks.entries)/2 {
		ks.compactSlice()
	}
}

// compactSlice drops dead slots in place, preserving order.
func (ks *kindState) compactSlice() {
	live := ks.entries[:0]
	for _, e := range ks.entries {
		if !e.dead {
			if ks.index != nil {
				ks.index[e.rec.Key] = len(live)
			}
			live = append(live, e)
		}
	}
	ks.entries = live
	ks.dead = 0
}

// applyDelete removes kind/key from the in-memory state: the live record
// for a state kind, every retained record with that key for an audit
// kind. Caller holds mu (or is single-threaded in Open).
func (s *Store) applyDelete(kind Kind, key string) {
	ks := s.kinds[kind]
	if ks == nil {
		return
	}
	if kind.Audit() {
		for i := range ks.entries {
			if !ks.entries[i].dead && ks.entries[i].rec.Key == key {
				ks.entries[i].dead = true
				ks.dead++
			}
		}
	} else if i, ok := ks.index[key]; ok {
		ks.entries[i].dead = true
		ks.dead++
		delete(ks.index, key)
	}
	if ks.dead > len(ks.entries)/2 {
		ks.compactSlice()
	}
}

// Delete journals a tombstone for kind/key and drops the record from the
// in-memory state — the live record for a state kind, every retained
// record with that key for an audit kind. Deleting an absent key is a
// no-op and writes nothing. The tombstone replays on restart and
// disappears at the next compaction (snapshots hold only live state).
func (s *Store) Delete(kind Kind, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	ks := s.kinds[kind]
	if ks == nil {
		return nil
	}
	present := false
	if kind.Audit() {
		for i := range ks.entries {
			if !ks.entries[i].dead && ks.entries[i].rec.Key == key {
				present = true
				break
			}
		}
	} else {
		_, present = ks.index[key]
	}
	if !present {
		return nil
	}
	data := append([]byte{byte(kind)}, key...)
	rec := Record{Kind: kindTombstone, Data: data}
	s.buf = s.buf[:0]
	s.buf = AppendFrame(s.buf, appendRecordPayload(nil, rec))
	if _, err := s.log.Write(s.buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.logSize += int64(len(s.buf))
	s.applyDelete(kind, key)
	s.stats.Appends++
	s.pending++
	if s.met != nil {
		s.met.Appends.Inc()
		s.met.LogBytes.Set(float64(s.logSize))
		s.met.Records.Set(float64(s.liveLocked()))
	}
	if s.pending >= s.opt.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

func (s *Store) liveCount() int {
	n := 0
	for _, ks := range s.kinds {
		n += len(ks.entries) - ks.dead
	}
	return n
}

// Put appends one record to the journal and merges it into the in-memory
// state. The data is copied. Every CompactEvery appends the store compacts
// automatically.
func (s *Store) Put(kind Kind, key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	var start time.Time
	if s.met != nil {
		start = time.Now()
	}
	rec := Record{Kind: kind, Key: key, Data: append([]byte(nil), data...)}
	s.buf = s.buf[:0]
	s.buf = AppendFrame(s.buf, appendRecordPayload(nil, rec))
	if _, err := s.log.Write(s.buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.logSize += int64(len(s.buf))
	s.apply(rec)
	s.stats.Appends++
	s.pending++
	if s.met != nil {
		s.met.AppendSeconds.Observe(time.Since(start).Seconds())
		s.met.Appends.Inc()
		s.met.LogBytes.Set(float64(s.logSize))
		s.met.Records.Set(float64(s.liveLocked()))
	}
	if s.pending >= s.opt.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// Get returns the live record data for a state-kind key.
func (s *Store) Get(kind Kind, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.kinds[kind]
	if ks == nil || ks.index == nil {
		return nil, false
	}
	i, ok := ks.index[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), ks.entries[i].rec.Data...), true
}

// Records returns the live records of one kind, oldest first (for state
// kinds that is least-recently-written first, the order a warm-started LRU
// wants). The returned records do not alias store memory.
func (s *Store) Records(kind Kind) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.kinds[kind]
	if ks == nil {
		return nil
	}
	out := make([]Record, 0, len(ks.entries)-ks.dead)
	for _, e := range ks.entries {
		if e.dead {
			continue
		}
		r := e.rec
		r.Data = append([]byte(nil), r.Data...)
		out = append(out, r)
	}
	return out
}

// Compact rewrites the snapshot from the live in-memory state (atomically,
// via rename) and truncates the log. Audit kinds keep their newest AuditCap
// records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	newEpoch := s.epoch + 1
	buf := AppendFileHeader(nil, JournalMagic)
	buf = AppendFrame(buf, epochRecord(newEpoch))
	kinds := make([]Kind, 0, len(s.kinds))
	for k := range s.kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		ks := s.kinds[k]
		ents := ks.entries
		if k.Audit() && len(ents) > s.opt.AuditCap {
			ents = ents[len(ents)-s.opt.AuditCap:]
		}
		for _, e := range ents {
			if e.dead {
				continue
			}
			buf = AppendFrame(buf, appendRecordPayload(nil, e.rec))
		}
	}
	tmp := s.snapPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The snapshot now owns everything: restart the log at the new epoch.
	// Truncate-then-seek keeps the same file handle valid; the epoch frame
	// ties the fresh log to the snapshot, so a crash anywhere in this
	// sequence leaves either a mismatched (discarded on open) or a
	// matching-and-empty log — never one that replays into duplicates.
	if err := s.log.Truncate(int64(fileHeaderLen)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.log.Seek(int64(fileHeaderLen), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	marker := AppendFrame(nil, epochRecord(newEpoch))
	if _, err := s.log.Write(marker); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.epoch = newEpoch
	s.logSize = int64(fileHeaderLen) + int64(len(marker))
	s.pending = 0
	s.stats.Compactions++
	if s.met != nil {
		s.met.Compactions.Inc()
		s.met.LogBytes.Set(float64(s.logSize))
		s.met.Records.Set(float64(s.liveLocked()))
	}
	// Trim in-memory audit rings to what the snapshot retained.
	for _, k := range kinds {
		ks := s.kinds[k]
		if k.Audit() && len(ks.entries) > s.opt.AuditCap {
			keep := ks.entries[len(ks.entries)-s.opt.AuditCap:]
			ks.entries = append(ks.entries[:0], keep...)
		}
	}
	return nil
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close syncs and closes the journal. Further Puts fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	serr := s.log.Sync()
	cerr := s.log.Close()
	if serr != nil {
		return fmt.Errorf("store: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("store: %w", cerr)
	}
	return nil
}

// Stats returns a snapshot of the store accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = s.liveCount()
	st.LogBytes = s.logSize
	return st
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }
