// Package store is the durability layer: an append-only, CRC-framed journal
// with periodic compacted snapshots and crash-safe recovery. The extraction
// service persists cache entries through it, the fleet manager persists
// per-device calibration state and its event log, and internal/trace borrows
// the frame codec for probe-trace files.
//
// On disk a store directory holds two files in the same format:
//
//	journal.snap   the last compacted snapshot (written atomically via rename)
//	journal.log    records appended since that snapshot
//
// Both start with a 4-byte magic and a little-endian uint32 format version,
// followed by frames of [uint32 length | uint32 CRC-32C | payload]. A record
// payload is [1 byte kind | uvarint key length | key | data]. Recovery
// truncates a torn tail — a partial or CRC-failing trailing frame, the
// signature of a crash mid-append — instead of failing, so a restarted
// daemon always loads the longest clean prefix.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FormatVersion is the on-disk format version of every file this repository
// persists — the journal snapshot, the journal log and probe-trace files all
// stamp and check this one constant.
const FormatVersion = 1

// File magics. Both file kinds share the frame codec and FormatVersion.
const (
	JournalMagic = "FVGJ" // journal.snap and journal.log
	TraceMagic   = "FVGT" // probe-trace files (internal/trace)
)

// fileHeaderLen is magic (4) + version (uint32).
const fileHeaderLen = 8

// frameHeaderLen is length (uint32) + CRC (uint32).
const frameHeaderLen = 8

// MaxFramePayload bounds a single frame so a corrupt length field can never
// drive a huge allocation.
const MaxFramePayload = 1 << 26

// ErrTorn marks a partial or corrupt trailing region: the expected outcome
// of a crash mid-append. Loaders recover by truncating to the last clean
// frame.
var ErrTorn = errors.New("store: torn frame")

// ErrFormat marks a file that is not a clean prefix of a valid file — wrong
// magic or an unsupported version. Unlike ErrTorn this is never produced by
// truncating a valid file (beyond the header), so it is not recovered from.
var ErrFormat = errors.New("store: bad file format")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFileHeader appends the magic + FormatVersion header to buf.
func AppendFileHeader(buf []byte, magic string) []byte {
	buf = append(buf, magic...)
	return binary.LittleEndian.AppendUint32(buf, FormatVersion)
}

// CheckFileHeader validates the header and returns the remaining bytes.
// A file shorter than the header is torn (ErrTorn); a full-length header
// with the wrong magic or version is ErrFormat.
func CheckFileHeader(b []byte, magic string) ([]byte, error) {
	if len(b) < fileHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte header", ErrTorn, len(b))
	}
	if string(b[:4]) != magic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrFormat, b[:4], magic)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrFormat, v, FormatVersion)
	}
	return b[fileHeaderLen:], nil
}

// AppendFrame appends one CRC frame carrying payload to buf.
func AppendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// NextFrame decodes the first frame of b, returning its payload and the
// remaining bytes. An empty b is the clean end of the file (payload nil,
// err nil). A partial frame, an oversized length or a CRC mismatch return
// ErrTorn; the caller decides whether that is recoverable (a log tail) or
// fatal.
func NextFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) == 0 {
		return nil, nil, nil
	}
	if len(b) < frameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d-byte frame header", ErrTorn, len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > MaxFramePayload {
		return nil, nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrTorn, n)
	}
	if len(b) < frameHeaderLen+int(n) {
		return nil, nil, fmt.Errorf("%w: %d of %d payload bytes", ErrTorn, len(b)-frameHeaderLen, n)
	}
	payload = b[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, nil, fmt.Errorf("%w: CRC mismatch", ErrTorn)
	}
	return payload, b[frameHeaderLen+int(n):], nil
}

// ReadFileHeader reads and validates the magic + version header from r —
// the streaming counterpart of CheckFileHeader, for readers that must not
// load a whole file (trace sample iteration).
func ReadFileHeader(r io.Reader, magic string) error {
	var hdr [fileHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		return fmt.Errorf("%w: %d-byte header", ErrTorn, n)
	}
	_, err = CheckFileHeader(hdr[:], magic)
	return err
}

// ReadFrame reads and verifies one frame from r — the streaming counterpart
// of NextFrame. A clean end of stream returns (nil, nil); a partial frame,
// an oversized length or a CRC mismatch return ErrTorn.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("%w: frame header: %v", ErrTorn, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFramePayload {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrTorn, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: frame payload: %v", ErrTorn, err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrTorn)
	}
	return payload, nil
}

// appendRecordPayload encodes a record as a frame payload.
func appendRecordPayload(buf []byte, rec Record) []byte {
	buf = append(buf, byte(rec.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Key)))
	buf = append(buf, rec.Key...)
	return append(buf, rec.Data...)
}

// decodeRecordPayload is the inverse of appendRecordPayload. The returned
// record aliases p.
func decodeRecordPayload(p []byte) (Record, error) {
	if len(p) < 1 {
		return Record{}, fmt.Errorf("%w: empty record", ErrTorn)
	}
	kind := Kind(p[0])
	keyLen, n := binary.Uvarint(p[1:])
	if n <= 0 || keyLen > uint64(len(p)-1-n) {
		return Record{}, fmt.Errorf("%w: record key length", ErrTorn)
	}
	body := p[1+n:]
	return Record{Kind: kind, Key: string(body[:keyLen]), Data: body[keyLen:]}, nil
}
