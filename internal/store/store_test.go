package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put(KindCacheEntry, "a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCacheEntry, "b", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindFleetClock, "", []byte("clock")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	recs := s2.Records(KindCacheEntry)
	if len(recs) != 2 || recs[0].Key != "a" || string(recs[0].Data) != "one" ||
		recs[1].Key != "b" || string(recs[1].Data) != "two" {
		t.Fatalf("cache records = %v", recs)
	}
	if d, ok := s2.Get(KindFleetClock, ""); !ok || string(d) != "clock" {
		t.Fatalf("clock = %q, %v", d, ok)
	}
	if got := s2.Stats().LoadedRecords; got != 3 {
		t.Fatalf("LoadedRecords = %d, want 3", got)
	}
}

func TestSupersedeKeepsWriteOrder(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	for i := 0; i < 3; i++ {
		for _, k := range []string{"x", "y", "z"} {
			if err := s.Put(KindCacheEntry, k, []byte(fmt.Sprintf("%s%d", k, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Re-writing x makes it the most recently written.
	if err := s.Put(KindCacheEntry, "x", []byte("x9")); err != nil {
		t.Fatal(err)
	}
	recs := s.Records(KindCacheEntry)
	if len(recs) != 3 {
		t.Fatalf("want 3 live records, got %d", len(recs))
	}
	want := []struct{ k, v string }{{"y", "y2"}, {"z", "z2"}, {"x", "x9"}}
	for i, w := range want {
		if recs[i].Key != w.k || string(recs[i].Data) != w.v {
			t.Errorf("recs[%d] = %s=%s, want %s=%s", i, recs[i].Key, recs[i].Data, w.k, w.v)
		}
	}
}

func TestAuditKindAppendsAndCaps(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{AuditCap: 8})
	for i := 0; i < 20; i++ {
		if err := s.Put(KindFleetEvent, "dev-1", []byte(fmt.Sprintf("ev%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{AuditCap: 8})
	defer s2.Close()
	recs := s2.Records(KindFleetEvent)
	if len(recs) != 8 {
		t.Fatalf("want AuditCap=8 events after compaction, got %d", len(recs))
	}
	if string(recs[0].Data) != "ev12" || string(recs[7].Data) != "ev19" {
		t.Fatalf("audit window = %s..%s, want ev12..ev19", recs[0].Data, recs[7].Data)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CompactEvery: 10})
	for i := 0; i < 35; i++ {
		if err := s.Put(KindCacheEntry, "k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Compactions; got != 3 {
		t.Fatalf("Compactions = %d, want 3", got)
	}
	// After compaction the log is near-empty and the snapshot holds the one
	// live record.
	if sz := s.Stats().LogBytes; sz > 256 {
		t.Fatalf("log still %d bytes after compaction", sz)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if d, ok := s2.Get(KindCacheEntry, "k"); !ok || string(d) != "v34" {
		t.Fatalf("k = %q, %v; want v34", d, ok)
	}
}

// TestTruncationRecovery is the crash-recovery property test: truncating the
// journal log at EVERY possible byte offset must yield a clean load of a
// record prefix — never a panic, an error, or a record that was not written.
func TestTruncationRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	var want [][]byte
	for i := 0; i < 12; i++ {
		data := []byte(fmt.Sprintf("payload-%02d-%s", i, string(make([]byte, i*3))))
		if err := s.Put(KindCacheEntry, fmt.Sprintf("key-%02d", i), data); err != nil {
			t.Fatal(err)
		}
		want = append(want, data)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "journal.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cs, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		recs := cs.Records(KindCacheEntry)
		if len(recs) > len(want) {
			t.Fatalf("cut %d: %d records from %d written", cut, len(recs), len(want))
		}
		for i, r := range recs {
			if wantKey := fmt.Sprintf("key-%02d", i); r.Key != wantKey || !bytes.Equal(r.Data, want[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, r.Key, wantKey)
			}
		}
		// The recovered store must accept appends and survive a clean reopen
		// with both the prefix and the new record intact.
		if err := cs.Put(KindCacheEntry, "post", []byte("recovered")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		n := len(recs)
		if err := cs.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		cs2, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		recs2 := cs2.Records(KindCacheEntry)
		if len(recs2) != n+1 || recs2[n].Key != "post" {
			t.Fatalf("cut %d: reopen lost data: %d records, want %d", cut, len(recs2), n+1)
		}
		cs2.Close()
	}
}

// TestMidFileCorruption flips a byte inside an early frame: the store must
// recover the prefix before it rather than fail.
func TestMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 6; i++ {
		if err := s.Put(KindCacheEntry, fmt.Sprintf("k%d", i), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.log")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer s2.Close()
	recs := s2.Records(KindCacheEntry)
	if len(recs) >= 6 {
		t.Fatalf("corrupt frame survived: %d records", len(recs))
	}
	for i, r := range recs {
		if r.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("prefix broken at %d: %q", i, r.Key)
		}
	}
	if s2.Stats().RecoveredBytes == 0 {
		t.Error("RecoveredBytes not accounted")
	}
}

// TestCrashBetweenSnapshotAndTruncate pins the compaction crash window: if
// the process dies after the snapshot rename but before the log truncation,
// the stale pre-compaction log must NOT be replayed over the snapshot — that
// would duplicate every append-only audit record.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(KindFleetEvent, "dev-1", []byte(fmt.Sprintf("ev%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(KindCacheEntry, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: snapshot the pre-compaction log, compact, then
	// put the old log back as if Truncate never ran.
	preLog, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.log"), preLog, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	evs := s2.Records(KindFleetEvent)
	if len(evs) != 5 {
		t.Fatalf("audit records duplicated: %d, want 5", len(evs))
	}
	if d, ok := s2.Get(KindCacheEntry, "k"); !ok || string(d) != "v" {
		t.Fatalf("state record lost: %q, %v", d, ok)
	}
	// The restarted log must carry the snapshot's epoch: appends then a
	// clean reopen keep exactly one copy of everything.
	if err := s2.Put(KindFleetEvent, "dev-1", []byte("ev5")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if got := len(s3.Records(KindFleetEvent)); got != 6 {
		t.Fatalf("events after reopen = %d, want 6", got)
	}
}

func TestBadMagicFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.log"), []byte("NOPE\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("want error for wrong magic")
	}
}

func TestClosedPutFails(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCacheEntry, "k", nil); err == nil {
		t.Fatal("want error on Put after Close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
