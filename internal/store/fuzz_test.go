package store

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode drives the frame + record decoder with arbitrary bytes:
// it must never panic, and every record it does accept must survive an
// encode → decode round trip unchanged (the codec is stable on the accepted
// set; byte-level comparison would reject non-minimal varints the decoder
// legitimately accepts).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, appendRecordPayload(nil, Record{Kind: KindCacheEntry, Key: "k", Data: []byte("v")})))
	f.Add(AppendFrame(nil, []byte{}))
	long := AppendFrame(nil, appendRecordPayload(nil, Record{Kind: KindFleetEvent, Key: "dev-001", Data: bytes.Repeat([]byte("x"), 300)}))
	f.Add(append(long, 0xde, 0xad))
	f.Fuzz(func(t *testing.T, b []byte) {
		rest := b
		for {
			payload, next, err := NextFrame(rest)
			if err != nil || payload == nil {
				return
			}
			rec, derr := decodeRecordPayload(payload)
			if derr == nil {
				re, _, rerr := NextFrame(AppendFrame(nil, appendRecordPayload(nil, rec)))
				if rerr != nil {
					t.Fatalf("re-encoded frame rejected: %v", rerr)
				}
				rec2, derr2 := decodeRecordPayload(re)
				if derr2 != nil || rec2.Kind != rec.Kind || rec2.Key != rec.Key || !bytes.Equal(rec2.Data, rec.Data) {
					t.Fatalf("round trip changed record: %+v -> %+v (%v)", rec, rec2, derr2)
				}
			}
			rest = next
		}
	})
}
