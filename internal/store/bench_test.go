package store

// The store benchmark trajectory (scripts/bench.sh renders these into
// BENCH_store.json):
//
//	BenchmarkJournalAppend   one Put per op with a result-sized payload
//	BenchmarkWarmStartLoad   Open on a journal of 1024 persisted results
//
// Appends are one write syscall each; warm start is one sequential read plus
// frame decoding, so both should stay far below extraction cost (an
// extraction is ~milliseconds of compute plus seconds of virtual dwell).

import (
	"fmt"
	"testing"
)

// benchPayload is sized like a persisted cacheRecord (request + result JSON).
var benchPayload = []byte(fmt.Sprintf(`{"request":{"kind":"fast","benchmark":6},"result":{"kind":"fast","benchmark":6,"hash":"%032d","steepSlope":-8.0123456789,"shallowSlope":-0.1212345678,"a12":0.125,"a21":0.12,"probes":531,"experimentS":26.55,"computeS":0.0042,"scored":true,"success":true}}`, 0))

func BenchmarkJournalAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// A bounded key space models the steady state of a live service — a
	// result cache superseding entries, not an ever-growing key set — so
	// the auto-compactions amortised into the loop rewrite a realistically
	// sized snapshot.
	const keySpace = 4096
	keys := make([]string, keySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("%032x", i)
	}
	b.SetBytes(int64(len(benchPayload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(KindCacheEntry, keys[i%keySpace], benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmStartLoad(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	const entries = 1024
	for i := 0; i < entries; i++ {
		if err := s.Put(KindCacheEntry, fmt.Sprintf("%032x", i), benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if got := ws.Stats().LoadedRecords; got != entries {
			b.Fatalf("loaded %d records, want %d", got, entries)
		}
		ws.Close()
	}
}
