package store

import (
	"fmt"
	"testing"
)

// Deleting a state-kind key removes it now and after a restart, while
// untouched keys survive both.
func TestDeleteStateKind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(KindCacheEntry, fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(KindCacheEntry, "k1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindCacheEntry, "k1"); ok {
		t.Fatal("k1 still readable after Delete")
	}
	if got := len(s.Records(KindCacheEntry)); got != 3 {
		t.Fatalf("live records = %d, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The tombstone replays over the log.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(KindCacheEntry, "k1"); ok {
		t.Fatal("k1 resurrected by restart")
	}
	if b, ok := s2.Get(KindCacheEntry, "k2"); !ok || b[0] != 2 {
		t.Fatalf("k2 = %v %v, want [2] true", b, ok)
	}

	// Re-putting a deleted key brings it back, including across compaction.
	if err := s2.Put(KindCacheEntry, "k1", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if b, ok := s2.Get(KindCacheEntry, "k1"); !ok || b[0] != 9 {
		t.Fatalf("k1 after re-put = %v %v, want [9] true", b, ok)
	}
}

// Deleting an audit-kind key drops every retained event with that key
// and leaves other keys' events in order, before and after a restart.
func TestDeleteAuditKind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(KindFleetEvent, "dev-a", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(KindFleetEvent, "dev-b", []byte{byte(10 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(KindFleetEvent, "dev-a"); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store) {
		t.Helper()
		recs := st.Records(KindFleetEvent)
		if len(recs) != 3 {
			t.Fatalf("got %d events, want 3", len(recs))
		}
		for i, r := range recs {
			if r.Key != "dev-b" || r.Data[0] != byte(10+i) {
				t.Fatalf("event %d = %q %v", i, r.Key, r.Data)
			}
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2)
}

// Deleting an absent key writes nothing: the log size stays put.
func TestDeleteAbsentKeyIsNoop(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(KindCacheEntry, "k", []byte{1}); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().LogBytes
	if err := s.Delete(KindCacheEntry, "missing"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(KindSpan, "nothing-of-this-kind"); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().LogBytes; after != before {
		t.Fatalf("no-op delete grew the log: %d -> %d", before, after)
	}
}

// Compaction erases tombstones along with their targets: a snapshot is
// rewritten from live state only, and the deleted key stays gone.
func TestDeleteSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCacheEntry, "gone", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindCacheEntry, "kept", []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(KindCacheEntry, "gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(KindCacheEntry, "gone"); ok {
		t.Fatal("deleted key survived compaction + restart")
	}
	if _, ok := s2.Get(KindCacheEntry, "kept"); !ok {
		t.Fatal("live key lost in compaction")
	}
}
