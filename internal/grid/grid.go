// Package grid provides the float64 raster type shared by the CSD
// acquisition, image-processing and reporting layers.
//
// A Grid uses Cartesian indexing: x is the column (0 at the left), y is the
// row with y increasing upward, matching the paper's Figure 5 voltage-space
// diagrams. Export helpers flip rows where an image format expects the top
// row first.
package grid

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is an integer pixel coordinate (x = column, y = row, y up).
type Point struct {
	X, Y int
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy int) Point { return Point{p.X + dx, p.Y + dy} }

// Grid is a dense W×H float64 raster.
type Grid struct {
	W, H int
	data []float64
}

// New returns a zero-filled W×H grid.
func New(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid size %dx%d", w, h))
	}
	return &Grid{W: w, H: h, data: make([]float64, w*h)}
}

// FromData wraps a row-major (bottom row first) data slice; it panics if the
// length does not equal w*h.
func FromData(w, h int, data []float64) *Grid {
	if len(data) != w*h {
		panic(fmt.Sprintf("grid: data length %d != %d*%d", len(data), w, h))
	}
	return &Grid{W: w, H: h, data: data}
}

// In reports whether (x, y) lies inside the grid.
func (g *Grid) In(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// At returns the value at (x, y). It panics on out-of-range access.
func (g *Grid) At(x, y int) float64 {
	if !g.In(x, y) {
		panic(fmt.Sprintf("grid: At(%d,%d) out of %dx%d", x, y, g.W, g.H))
	}
	return g.data[y*g.W+x]
}

// AtClamped returns the value at (x, y) with coordinates clamped to the grid
// edge — the boundary convention used by convolution and by dataset-backed
// instruments probed one pixel past the window.
func (g *Grid) AtClamped(x, y int) float64 {
	if x < 0 {
		x = 0
	}
	if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.H {
		y = g.H - 1
	}
	return g.data[y*g.W+x]
}

// Set stores v at (x, y). It panics on out-of-range access.
func (g *Grid) Set(x, y int, v float64) {
	if !g.In(x, y) {
		panic(fmt.Sprintf("grid: Set(%d,%d) out of %dx%d", x, y, g.W, g.H))
	}
	g.data[y*g.W+x] = v
}

// Data exposes the underlying row-major (bottom row first) storage.
func (g *Grid) Data() []float64 { return g.data }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	c := New(g.W, g.H)
	copy(c.data, g.data)
	return c
}

// Fill sets every cell to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// Apply replaces every cell with f(x, y, value).
func (g *Grid) Apply(f func(x, y int, v float64) float64) {
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			i := y*g.W + x
			g.data[i] = f(x, y, g.data[i])
		}
	}
}

// MinMax returns the minimum and maximum cell values.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range g.data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the mean cell value.
func (g *Grid) Mean() float64 {
	var s float64
	for _, v := range g.data {
		s += v
	}
	return s / float64(len(g.data))
}

// Std returns the population standard deviation of cell values.
func (g *Grid) Std() float64 {
	m := g.Mean()
	var ss float64
	for _, v := range g.data {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(len(g.data)))
}

// Percentile returns the p-th percentile (0..100) of cell values.
func (g *Grid) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic("grid: percentile out of range")
	}
	s := append([]float64(nil), g.data...)
	sort.Float64s(s)
	idx := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Normalized returns a copy rescaled to [0, 1]; a constant grid maps to 0.
func (g *Grid) Normalized() *Grid {
	lo, hi := g.MinMax()
	c := g.Clone()
	if hi == lo {
		c.Fill(0)
		return c
	}
	scale := 1 / (hi - lo)
	for i, v := range c.data {
		c.data[i] = (v - lo) * scale
	}
	return c
}

// Crop returns the sub-grid [x0, x0+w) × [y0, y0+h).
func (g *Grid) Crop(x0, y0, w, h int) (*Grid, error) {
	if x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0+w > g.W || y0+h > g.H {
		return nil, errors.New("grid: crop rectangle out of bounds")
	}
	c := New(w, h)
	for y := 0; y < h; y++ {
		copy(c.data[y*w:(y+1)*w], g.data[(y0+y)*g.W+x0:(y0+y)*g.W+x0+w])
	}
	return c, nil
}

// CropCenterFrac returns the central frac×frac portion of the grid (the
// paper crops its CSDs to the central 50% region containing the 2×2 charge
// states).
func (g *Grid) CropCenterFrac(frac float64) (*Grid, error) {
	if frac <= 0 || frac > 1 {
		return nil, errors.New("grid: crop fraction must be in (0, 1]")
	}
	w := int(math.Round(float64(g.W) * frac))
	h := int(math.Round(float64(g.H) * frac))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return g.Crop((g.W-w)/2, (g.H-h)/2, w, h)
}

// Equal reports whether two grids have identical dimensions and contents.
func (g *Grid) Equal(o *Grid) bool {
	if g.W != o.W || g.H != o.H {
		return false
	}
	for i := range g.data {
		if g.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// BilinearAt samples the grid at fractional coordinates with edge clamping;
// pixel (x, y) is centred at coordinate (x, y).
func (g *Grid) BilinearAt(x, y float64) float64 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	v00 := g.AtClamped(x0, y0)
	v10 := g.AtClamped(x0+1, y0)
	v01 := g.AtClamped(x0, y0+1)
	v11 := g.AtClamped(x0+1, y0+1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// LinePoints rasterises the segment from a to b (inclusive) with Bresenham's
// algorithm; used to draw triangle edges and fitted lines in figure overlays.
func LinePoints(a, b Point) []Point {
	dx := absInt(b.X - a.X)
	dy := -absInt(b.Y - a.Y)
	sx, sy := 1, 1
	if a.X > b.X {
		sx = -1
	}
	if a.Y > b.Y {
		sy = -1
	}
	err := dx + dy
	var pts []Point
	x, y := a.X, a.Y
	for {
		pts = append(pts, Point{X: x, Y: y})
		if x == b.X && y == b.Y {
			return pts
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
