package grid

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// WritePGM writes the grid as a 16-bit binary PGM (P5), normalised to the
// full dynamic range. The top image row is the highest y.
func (g *Grid) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n65535\n", g.W, g.H); err != nil {
		return err
	}
	n := g.Normalized()
	buf := make([]byte, 2*g.W)
	for y := g.H - 1; y >= 0; y-- {
		for x := 0; x < g.W; x++ {
			v := uint16(math.Round(n.At(x, y) * 65535))
			buf[2*x] = byte(v >> 8)
			buf[2*x+1] = byte(v)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPGM reads a 16-bit or 8-bit binary PGM written by WritePGM (values are
// mapped to [0, 1]).
func ReadPGM(r io.Reader) (*Grid, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxVal int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxVal); err != nil {
		return nil, fmt.Errorf("grid: bad PGM header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("grid: unsupported PGM magic %q", magic)
	}
	if w <= 0 || h <= 0 || maxVal <= 0 || maxVal > 65535 {
		return nil, fmt.Errorf("grid: bad PGM dimensions %dx%d max %d", w, h, maxVal)
	}
	if _, err := br.ReadByte(); err != nil { // single whitespace after header
		return nil, err
	}
	g := New(w, h)
	bytesPer := 1
	if maxVal > 255 {
		bytesPer = 2
	}
	row := make([]byte, bytesPer*w)
	for y := h - 1; y >= 0; y-- {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("grid: short PGM data: %w", err)
		}
		for x := 0; x < w; x++ {
			var v int
			if bytesPer == 2 {
				v = int(row[2*x])<<8 | int(row[2*x+1])
			} else {
				v = int(row[x])
			}
			g.Set(x, y, float64(v)/float64(maxVal))
		}
	}
	return g, nil
}

// ToGrayImage converts the grid to an 8-bit grayscale image (top row = max y).
func (g *Grid) ToGrayImage() *image.Gray {
	n := g.Normalized()
	img := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			img.SetGray(x, g.H-1-y, color.Gray{Y: uint8(math.Round(n.At(x, y) * 255))})
		}
	}
	return img
}

// WritePNG writes the grid as a grayscale PNG.
func (g *Grid) WritePNG(w io.Writer) error {
	return png.Encode(w, g.ToGrayImage())
}

// WritePNGFile writes the grid as a grayscale PNG to the named file.
func (g *Grid) WritePNGFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WritePNG(f); err != nil {
		return err
	}
	return f.Close()
}

// Overlay is a set of marked pixels drawn over a grid rendering, used for
// probe maps and transition-point figures.
type Overlay struct {
	Points  []Point
	R, G, B uint8
}

// WritePNGWithOverlays renders the grid in grayscale and draws each overlay's
// points in its colour.
func (g *Grid) WritePNGWithOverlays(w io.Writer, overlays ...Overlay) error {
	base := g.ToGrayImage()
	img := image.NewRGBA(base.Bounds())
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := base.GrayAt(x, y).Y
			img.Set(x, y, color.RGBA{v, v, v, 255})
		}
	}
	for _, ov := range overlays {
		for _, p := range ov.Points {
			if p.X >= 0 && p.X < g.W && p.Y >= 0 && p.Y < g.H {
				img.Set(p.X, g.H-1-p.Y, color.RGBA{ov.R, ov.G, ov.B, 255})
			}
		}
	}
	return png.Encode(w, img)
}

// WriteCSV writes the grid as comma-separated rows, top row first.
func (g *Grid) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, g.W)
	for y := g.H - 1; y >= 0; y-- {
		for x := 0; x < g.W; x++ {
			rec[x] = strconv.FormatFloat(g.At(x, y), 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a grid written by WriteCSV.
func ReadCSV(r io.Reader) (*Grid, error) {
	recs, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 || len(recs[0]) == 0 {
		return nil, fmt.Errorf("grid: empty CSV")
	}
	h, w := len(recs), len(recs[0])
	g := New(w, h)
	for i, rec := range recs {
		if len(rec) != w {
			return nil, fmt.Errorf("grid: ragged CSV row %d", i)
		}
		y := h - 1 - i
		for x, s := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("grid: CSV cell (%d,%d): %w", i, x, err)
			}
			g.Set(x, y, v)
		}
	}
	return g, nil
}

// asciiRamp orders glyphs from dark to bright.
const asciiRamp = " .:-=+*#%@"

// ASCII renders the grid as terminal art, one glyph per cell, optionally
// downsampling to at most maxCols columns (0 means no limit). The top line is
// the highest y, matching the PNG orientation.
func (g *Grid) ASCII(maxCols int) string {
	step := 1
	if maxCols > 0 && g.W > maxCols {
		step = (g.W + maxCols - 1) / maxCols
	}
	n := g.Normalized()
	var b strings.Builder
	for y := g.H - 1; y >= 0; y -= step {
		for x := 0; x < g.W; x += step {
			idx := int(n.At(x, y) * float64(len(asciiRamp)-1))
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
