package grid

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func ramp(w, h int) *Grid {
	g := New(w, h)
	g.Apply(func(x, y int, _ float64) float64 { return float64(x + y*w) })
	return g
}

func TestNewZeroFilled(t *testing.T) {
	g := New(4, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if g.At(x, y) != 0 {
				t.Fatalf("New grid not zero at (%d,%d)", x, y)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	g := New(5, 7)
	g.Set(3, 6, 42.5)
	if got := g.At(3, 6); got != 42.5 {
		t.Errorf("At = %v, want 42.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestAtClamped(t *testing.T) {
	g := ramp(3, 3)
	if got := g.AtClamped(-5, 1); got != g.At(0, 1) {
		t.Errorf("clamp left = %v", got)
	}
	if got := g.AtClamped(10, 10); got != g.At(2, 2) {
		t.Errorf("clamp corner = %v", got)
	}
}

func TestMinMaxMeanStd(t *testing.T) {
	g := FromData(2, 2, []float64{1, 2, 3, 4})
	lo, hi := g.MinMax()
	if lo != 1 || hi != 4 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if m := g.Mean(); m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if s := g.Std(); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %v", s)
	}
}

func TestPercentile(t *testing.T) {
	g := FromData(5, 1, []float64{10, 20, 30, 40, 50})
	if p := g.Percentile(0); p != 10 {
		t.Errorf("P0 = %v", p)
	}
	if p := g.Percentile(100); p != 50 {
		t.Errorf("P100 = %v", p)
	}
	if p := g.Percentile(50); p != 30 {
		t.Errorf("P50 = %v", p)
	}
	if p := g.Percentile(25); p != 20 {
		t.Errorf("P25 = %v", p)
	}
}

func TestNormalized(t *testing.T) {
	g := FromData(2, 1, []float64{-3, 5})
	n := g.Normalized()
	if n.At(0, 0) != 0 || n.At(1, 0) != 1 {
		t.Errorf("Normalized = %v, %v", n.At(0, 0), n.At(1, 0))
	}
	flat := New(3, 3)
	flat.Fill(7)
	fn := flat.Normalized()
	if lo, hi := fn.MinMax(); lo != 0 || hi != 0 {
		t.Errorf("constant grid normalised to [%v, %v], want zeros", lo, hi)
	}
}

func TestCrop(t *testing.T) {
	g := ramp(6, 5)
	c, err := g.Crop(2, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 3 || c.H != 2 {
		t.Fatalf("crop size %dx%d", c.W, c.H)
	}
	if c.At(0, 0) != g.At(2, 1) || c.At(2, 1) != g.At(4, 2) {
		t.Error("crop content mismatch")
	}
	if _, err := g.Crop(5, 0, 3, 2); err == nil {
		t.Error("out-of-bounds crop accepted")
	}
}

func TestCropCenterFrac(t *testing.T) {
	g := ramp(100, 100)
	c, err := g.CropCenterFrac(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 50 || c.H != 50 {
		t.Fatalf("center crop size %dx%d, want 50x50", c.W, c.H)
	}
	if c.At(0, 0) != g.At(25, 25) {
		t.Error("center crop misaligned")
	}
	if _, err := g.CropCenterFrac(0); err == nil {
		t.Error("frac 0 accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := ramp(3, 3)
	c := g.Clone()
	c.Set(0, 0, -99)
	if g.At(0, 0) == -99 {
		t.Error("Clone shares storage")
	}
	if !g.Equal(g.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestBilinearAt(t *testing.T) {
	g := FromData(2, 2, []float64{0, 1, 2, 3})
	if v := g.BilinearAt(0.5, 0.5); math.Abs(v-1.5) > 1e-12 {
		t.Errorf("center bilinear = %v, want 1.5", v)
	}
	if v := g.BilinearAt(0, 0); v != 0 {
		t.Errorf("corner bilinear = %v, want 0", v)
	}
	if v := g.BilinearAt(-3, -3); v != 0 {
		t.Errorf("clamped bilinear = %v, want 0", v)
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := ramp(17, 9)
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.W != g.W || r.H != g.H {
		t.Fatalf("round trip size %dx%d", r.W, r.H)
	}
	// Values are normalised on write; compare against normalised original.
	n := g.Normalized()
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if math.Abs(r.At(x, y)-n.At(x, y)) > 1.0/65535+1e-9 {
				t.Fatalf("PGM value mismatch at (%d,%d): %v vs %v", x, y, r.At(x, y), n.At(x, y))
			}
		}
	}
}

func TestPGMRejectsGarbage(t *testing.T) {
	if _, err := ReadPGM(strings.NewReader("P2\n2 2\n255\n")); err == nil {
		t.Error("accepted ASCII PGM magic")
	}
	if _, err := ReadPGM(strings.NewReader("nonsense")); err == nil {
		t.Error("accepted garbage header")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := ramp(7, 4)
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(r) {
		t.Error("CSV round trip lost data")
	}
}

func TestPNGWrites(t *testing.T) {
	g := ramp(10, 10)
	var buf bytes.Buffer
	if err := g.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty PNG output")
	}
	var buf2 bytes.Buffer
	ov := Overlay{Points: []Point{{1, 1}, {2, 2}}, R: 255}
	if err := g.WritePNGWithOverlays(&buf2, ov); err != nil {
		t.Fatal(err)
	}
	if buf2.Len() == 0 {
		t.Error("empty overlay PNG output")
	}
}

func TestASCII(t *testing.T) {
	g := ramp(4, 3)
	s := g.ASCII(0)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("ASCII has %d lines, want 3", len(lines))
	}
	if len(lines[0]) != 4 {
		t.Fatalf("ASCII line width %d, want 4", len(lines[0]))
	}
	// Brightest cell is at top-right (highest value in the ramp).
	if lines[0][3] != '@' {
		t.Errorf("brightest glyph = %q, want '@'", lines[0][3])
	}
	small := ramp(100, 100).ASCII(20)
	first := strings.SplitN(small, "\n", 2)[0]
	if len(first) > 20 {
		t.Errorf("downsampled ASCII width %d > 20", len(first))
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := ramp(3, 3)
	b := ramp(3, 3)
	if !a.Equal(b) {
		t.Error("identical grids not Equal")
	}
	b.Set(1, 1, -1)
	if a.Equal(b) {
		t.Error("different grids Equal")
	}
	if a.Equal(New(3, 4)) {
		t.Error("different sizes Equal")
	}
}

func TestApply(t *testing.T) {
	g := New(3, 2)
	g.Apply(func(x, y int, _ float64) float64 { return float64(x * y) })
	if g.At(2, 1) != 2 {
		t.Errorf("Apply result = %v", g.At(2, 1))
	}
}

func TestNormalizedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		g := FromData(len(vals), 1, append([]float64(nil), vals...))
		n := g.Normalized()
		lo, hi := n.MinMax()
		return lo >= -1e-12 && hi <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinePoints(t *testing.T) {
	pts := LinePoints(Point{0, 0}, Point{4, 2})
	if pts[0] != (Point{0, 0}) || pts[len(pts)-1] != (Point{4, 2}) {
		t.Fatalf("endpoints wrong: %v", pts)
	}
	// 8-connected: consecutive points differ by at most 1 in each axis.
	for i := 1; i < len(pts); i++ {
		if absInt(pts[i].X-pts[i-1].X) > 1 || absInt(pts[i].Y-pts[i-1].Y) > 1 {
			t.Fatalf("gap between %v and %v", pts[i-1], pts[i])
		}
	}
	// Degenerate segment.
	if got := LinePoints(Point{3, 3}, Point{3, 3}); len(got) != 1 {
		t.Fatalf("degenerate segment = %v", got)
	}
	// Steep downward segment.
	down := LinePoints(Point{2, 10}, Point{0, 0})
	if down[0] != (Point{2, 10}) || down[len(down)-1] != (Point{0, 0}) {
		t.Fatalf("downward endpoints wrong: %v", down)
	}
}
