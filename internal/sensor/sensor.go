// Package sensor models the proximal charge sensor of a quantum dot device:
// a single sensor dot operated on the flank of one of its Coulomb-blockade
// conductance peaks.
//
// The sensor's effective gate charge q is shifted smoothly by the plunger
// gates (direct cross-capacitance — this produces the bright background
// gradient of measured CSDs) and discontinuously by each electron added to a
// device dot (this produces the current step at every charge transition line
// that the paper's feature gradient detects). The conductance is a Gaussian
// peak in q, so the sign and size of a transition step depend on the local
// operating point, as on real devices.
package sensor

import (
	"errors"
	"math"
)

// Params describes a charge sensor coupled to nGates plunger gates and
// nDots device dots.
type Params struct {
	Base      float64 `json:"base"`      // baseline current (nA)
	PeakAmp   float64 `json:"peakAmp"`   // Coulomb peak height (nA)
	PeakPos   float64 `json:"peakPos"`   // peak centre in effective-charge units
	PeakWidth float64 `json:"peakWidth"` // Gaussian σ of the peak

	Kappa  []float64 `json:"kappa"`  // per-gate lever arm onto the sensor (charge units / mV)
	Lambda []float64 `json:"lambda"` // per-dot charge shift per trapped electron

	Tilt []float64 `json:"tilt"` // direct linear current crosstalk per gate (nA/mV)
}

// Validate checks dimensions and positivity.
func (p *Params) Validate() error {
	if p.PeakWidth <= 0 {
		return errors.New("sensor: peak width must be positive")
	}
	if p.PeakAmp == 0 {
		return errors.New("sensor: peak amplitude must be non-zero")
	}
	if len(p.Kappa) == 0 || len(p.Lambda) == 0 {
		return errors.New("sensor: kappa and lambda must be non-empty")
	}
	if p.Tilt != nil && len(p.Tilt) != len(p.Kappa) {
		return errors.New("sensor: tilt length must match kappa")
	}
	return nil
}

// EffectiveCharge returns the sensor's effective gate charge at gate
// voltages v with dot occupations n.
func (p *Params) EffectiveCharge(v []float64, n []int) float64 {
	var q float64
	for g, vg := range v {
		if g < len(p.Kappa) {
			q += p.Kappa[g] * vg
		}
	}
	for i, ni := range n {
		if i < len(p.Lambda) {
			q -= p.Lambda[i] * float64(ni)
		}
	}
	return q
}

// Current returns the noiseless sensor current at gate voltages v with dot
// occupations n.
func (p *Params) Current(v []float64, n []int) float64 {
	q := p.EffectiveCharge(v, n)
	d := (q - p.PeakPos) / p.PeakWidth
	i := p.Base + p.PeakAmp*math.Exp(-0.5*d*d)
	for g, vg := range v {
		if p.Tilt != nil && g < len(p.Tilt) {
			i += p.Tilt[g] * vg
		}
	}
	return i
}

// CanFast2 reports whether Current2, the fixed-arity two-gate two-dot fast
// path, may be used in place of Current: every coefficient the two-gate
// evaluation reads must exist. Extra kappa/lambda entries beyond the first
// two are fine — a two-gate probe never reads them on the generic path
// either.
func (p *Params) CanFast2() bool {
	return len(p.Kappa) >= 2 && len(p.Lambda) >= 2 &&
		(p.Tilt == nil || len(p.Tilt) >= 2)
}

// Current2 returns Current([]float64{v1, v2}, []int{n1, n2}) without
// materialising the slices — the zero-allocation probe hot path. It performs
// the generic path's floating-point operations in the same order, so the
// result is bit-identical. Callers must check CanFast2 first.
func (p *Params) Current2(v1, v2 float64, n1, n2 int) float64 {
	var q float64
	q += p.Kappa[0] * v1
	q += p.Kappa[1] * v2
	q -= p.Lambda[0] * float64(n1)
	q -= p.Lambda[1] * float64(n2)
	d := (q - p.PeakPos) / p.PeakWidth
	i := p.Base + p.PeakAmp*math.Exp(-0.5*d*d)
	if p.Tilt != nil {
		i += p.Tilt[0] * v1
		i += p.Tilt[1] * v2
	}
	return i
}

// StepSize returns the current change caused by adding one electron to dot
// `dot` at gate voltages v, starting from occupations n — the contrast a
// transition line has at that operating point. Negative values mean the
// current drops when the electron loads (the common flank configuration).
func (p *Params) StepSize(dot int, v []float64, n []int) float64 {
	before := p.Current(v, n)
	after := make([]int, len(n))
	copy(after, n)
	after[dot]++
	return p.Current(v, after) - before
}

// DefaultDoubleDot returns a sensor tuned for a two-gate, two-dot device:
// operated on the rising flank of its peak so that loading either dot drops
// the current, with dot-dependent contrast lambda1, lambda2 (charge units).
// windowSpan is the full (V1+V2) span of the scan window in mV, used to keep
// the background sweep within one flank of the peak.
//
// The tuning keeps the few-electron (0,0) region the brightest part of the
// window: the flank is steep enough (q sweeps ~1.5σ) and the occupation
// shifts large enough that every electron added drops the current below the
// pre-transition background — the property the anchor preprocessing's
// "brightest point" heuristic (paper Section 4.4) relies on.
func DefaultDoubleDot(lambda1, lambda2, windowSpan float64) Params {
	width := 1.0
	kappa := 1.5 * width / math.Max(windowSpan, 1)
	return Params{
		Base:      0.05,
		PeakAmp:   1.0,
		PeakPos:   1.7 * width, // window spans q in [0, ~1.5σ): rising flank
		PeakWidth: width,
		Kappa:     []float64{kappa, kappa},
		Lambda:    []float64{lambda1, lambda2},
		Tilt:      []float64{0, 0},
	}
}
