package sensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := DefaultDoubleDot(0.3, 0.3, 100)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := good
	bad.PeakWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero peak width")
	}
	bad = good
	bad.PeakAmp = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero peak amplitude")
	}
	bad = good
	bad.Kappa = nil
	if err := bad.Validate(); err == nil {
		t.Error("accepted empty kappa")
	}
	bad = good
	bad.Tilt = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("accepted mismatched tilt length")
	}
}

func TestEffectiveCharge(t *testing.T) {
	p := Params{
		PeakAmp: 1, PeakWidth: 1,
		Kappa:  []float64{0.01, 0.02},
		Lambda: []float64{0.3, 0.4},
	}
	q := p.EffectiveCharge([]float64{100, 50}, []int{1, 2})
	want := 0.01*100 + 0.02*50 - 0.3*1 - 0.4*2
	if math.Abs(q-want) > 1e-12 {
		t.Errorf("EffectiveCharge = %v, want %v", q, want)
	}
}

func TestCurrentPeakShape(t *testing.T) {
	p := Params{
		Base: 0.1, PeakAmp: 2, PeakPos: 0.5, PeakWidth: 0.2,
		Kappa:  []float64{1},
		Lambda: []float64{0.1},
	}
	atPeak := p.Current([]float64{0.5}, []int{0})
	if math.Abs(atPeak-2.1) > 1e-12 {
		t.Errorf("current at peak = %v, want 2.1", atPeak)
	}
	farAway := p.Current([]float64{10}, []int{0})
	if math.Abs(farAway-0.1) > 1e-6 {
		t.Errorf("current far from peak = %v, want ~base 0.1", farAway)
	}
}

func TestStepSizeNegativeOnRisingFlank(t *testing.T) {
	// On the rising flank (q below the peak), trapping an electron lowers q
	// further from the peak, so the current must drop.
	p := DefaultDoubleDot(0.35, 0.35, 100)
	step := p.StepSize(0, []float64{20, 20}, []int{0, 0})
	if step >= 0 {
		t.Errorf("step on rising flank = %v, want negative", step)
	}
}

func TestStepSizeScalesWithLambda(t *testing.T) {
	strong := DefaultDoubleDot(0.5, 0.5, 100)
	weak := DefaultDoubleDot(0.05, 0.05, 100)
	v := []float64{50, 50}
	s := math.Abs(strong.StepSize(0, v, []int{0, 0}))
	w := math.Abs(weak.StepSize(0, v, []int{0, 0}))
	if s <= w {
		t.Errorf("strong-coupling step %v not larger than weak %v", s, w)
	}
}

func TestBackgroundMonotoneAcrossWindow(t *testing.T) {
	// DefaultDoubleDot keeps the operating point on one flank across the
	// window, so the zero-occupation background rises monotonically along
	// the diagonal (the "brightest point" heuristic of Section 4.4 depends
	// on a smooth bright background).
	p := DefaultDoubleDot(0.3, 0.3, 200)
	prev := math.Inf(-1)
	for s := 0.0; s <= 100; s += 5 {
		cur := p.Current([]float64{s, s}, []int{0, 0})
		if cur < prev {
			t.Fatalf("background not monotone at diagonal position %v: %v < %v", s, cur, prev)
		}
		prev = cur
	}
}

func TestTiltAddsLinearTerm(t *testing.T) {
	p := DefaultDoubleDot(0.3, 0.3, 100)
	p.Tilt = []float64{0.001, 0}
	base := DefaultDoubleDot(0.3, 0.3, 100)
	v := []float64{40, 10}
	diff := p.Current(v, []int{0, 0}) - base.Current(v, []int{0, 0})
	if math.Abs(diff-0.04) > 1e-12 {
		t.Errorf("tilt contribution = %v, want 0.04", diff)
	}
}

func TestStepSizePropertyMoreElectronsLowerCurrent(t *testing.T) {
	// Anywhere on the rising flank, each additional electron must reduce the
	// current relative to fewer electrons (monotone contrast).
	p := DefaultDoubleDot(0.25, 0.25, 200) // span covers V1+V2 up to 200 mV
	f := func(v1Raw, v2Raw float64) bool {
		v := []float64{math.Mod(math.Abs(v1Raw), 100), math.Mod(math.Abs(v2Raw), 100)}
		i0 := p.Current(v, []int{0, 0})
		i1 := p.Current(v, []int{1, 0})
		i2 := p.Current(v, []int{1, 1})
		return i1 < i0 && i2 < i1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCurrent2MatchesCurrentBitwise(t *testing.T) {
	// The fixed-arity fast path must reproduce the generic path bit for bit
	// across random parameter sets, with and without tilt.
	rng := func(seed, i int) float64 { // cheap deterministic stream
		x := float64((seed*2654435761+i*40503)%10007) / 10007
		return x
	}
	for trial := 0; trial < 50; trial++ {
		p := Params{
			Base:      rng(trial, 1),
			PeakAmp:   0.5 + rng(trial, 2),
			PeakPos:   2 * rng(trial, 3),
			PeakWidth: 0.5 + rng(trial, 4),
			Kappa:     []float64{0.02 * rng(trial, 5), 0.02 * rng(trial, 6)},
			Lambda:    []float64{0.5 * rng(trial, 7), 0.5 * rng(trial, 8)},
		}
		if trial%2 == 0 {
			p.Tilt = []float64{0.001 * rng(trial, 9), 0.001 * rng(trial, 10)}
		}
		if !p.CanFast2() {
			t.Fatalf("trial %d: params unexpectedly not fast-capable", trial)
		}
		for i := 0; i < 200; i++ {
			v1 := 100 * rng(trial, 11+i)
			v2 := 100 * rng(trial, 1011+i)
			n1, n2 := i%4, (i/4)%4
			want := p.Current([]float64{v1, v2}, []int{n1, n2})
			if got := p.Current2(v1, v2, n1, n2); got != want {
				t.Fatalf("trial %d: Current2(%v,%v,%d,%d) = %v, want %v",
					trial, v1, v2, n1, n2, got, want)
			}
		}
	}
}

func TestCanFast2RejectsShortCoefficients(t *testing.T) {
	p := DefaultDoubleDot(0.4, 0.4, 100)
	if !p.CanFast2() {
		t.Fatal("default double-dot sensor should be fast-capable")
	}
	short := p
	short.Kappa = p.Kappa[:1]
	if short.CanFast2() {
		t.Error("1-gate kappa must disable the fast path")
	}
	short = p
	short.Lambda = p.Lambda[:1]
	if short.CanFast2() {
		t.Error("1-dot lambda must disable the fast path")
	}
	short = p
	short.Tilt = []float64{0.1}
	if short.CanFast2() {
		t.Error("short tilt must disable the fast path")
	}
}
