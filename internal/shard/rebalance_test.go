package shard

import (
	"context"
	"testing"

	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/service"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/xrand"
)

// TestRebalanceShipsOnlyMovedRanges is the acceptance property for shard
// join: growing 2 → 3 shards ships exactly the journal ranges whose keys
// changed owner under the new ring — every shipped key's new owner is the
// ring's answer, every unshipped key stayed where both rings agree — and
// the grown cluster then serves every prior request from cache and owns
// every fleet device on its new home shard, journal history included.
func TestRebalanceShipsOnlyMovedRanges(t *testing.T) {
	dir := t.TempDir()
	base := service.Config{Workers: 2, ScrapeInterval: -1}
	c, rep, err := Open(Config{Shards: 2, DataDir: dir, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("fresh dir rebalanced: %+v", rep)
	}
	ctx := context.Background()

	reqs := simRequests(10)
	want := make([]string, len(reqs))
	hashes := make([]string, len(reqs))
	for i, req := range reqs {
		res, err := c.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = normalize(t, res)
		if hashes[i], err = req.Hash(); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := fleet.ProfileSpec(fleet.ProfileStandard, xrand.DeriveSeed(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	deviceIDs := []string{"dev-a", "dev-b", "dev-c", "dev-d", "dev-e", "dev-f"}
	for _, id := range deviceIDs {
		svc, _, err := c.shard(c.ring.Owner(id))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Fleet().Register(fleet.DeviceConfig{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	// A few ticks journal per-device calibration events.
	c.each(func(_ int, svc *service.Service) {
		for i := 0; i < 3; i++ {
			if _, err := svc.Fleet().Tick(ctx, 300); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}

	c3, rep, err := Open(Config{Shards: 3, DataDir: dir, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close(ctx)
	if rep == nil || rep.From != 2 || rep.To != 3 {
		t.Fatalf("expected a 2->3 rebalance report, got %+v", rep)
	}
	if len(rep.Moved) == 0 {
		t.Fatal("join moved nothing")
	}

	// Every shipped key moved because the ring says so; nothing shipped
	// between surviving shards' unchanged arcs.
	r2, r3 := NewRing(2), NewRing(3)
	routeOf := func(kind store.Kind, key string) (string, bool) {
		switch kind {
		case store.KindFleetDevice, store.KindFleetEvent:
			return key, true
		case store.KindSurrogateModel:
			// Not exercised by this workload's kinds.
			return "", false
		default:
			return "", false
		}
	}
	for _, mv := range rep.Moved {
		if mv.From == mv.To {
			t.Fatalf("no-op move shipped: %+v", mv)
		}
		if rk, ok := routeOf(mv.Kind, mv.Key); ok {
			if r2.Owner(rk) != mv.From {
				t.Fatalf("moved key %+v did not live on its old ring owner %d", mv, r2.Owner(rk))
			}
			if r3.Owner(rk) != mv.To {
				t.Fatalf("moved key %+v not shipped to its new ring owner %d", mv, r3.Owner(rk))
			}
		}
	}
	// Unmoved fleet devices: both rings agree, and the device is still
	// served from its original shard's journal.
	movedSet := make(map[string]bool)
	for _, mv := range rep.Moved {
		if mv.Kind == store.KindFleetDevice {
			movedSet[mv.Key] = true
		}
	}
	for _, id := range deviceIDs {
		if !movedSet[id] && r2.Owner(id) != r3.Owner(id) {
			t.Fatalf("device %q changed ring owner %d->%d but was not shipped",
				id, r2.Owner(id), r3.Owner(id))
		}
		if movedSet[id] && r2.Owner(id) == r3.Owner(id) {
			t.Fatalf("device %q shipped although its owner did not change", id)
		}
	}

	// The grown cluster serves every prior request from cache, identical
	// bytes, and owns every device where the new ring points — with its
	// journaled history intact.
	for i, req := range reqs {
		res, err := c3.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("request %d re-extracted after rebalance", i)
		}
		if normalize(t, res) != want[i] {
			t.Fatalf("request %d changed across rebalance", i)
		}
	}
	for _, id := range deviceIDs {
		owner := r3.Owner(id)
		svc, _, err := c3.shard(owner)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := svc.Fleet().Device(id); !ok {
			t.Fatalf("device %q missing from new owner shard %d", id, owner)
		}
		evs, ok := svc.Fleet().JournalHistory(id)
		if !ok || len(evs) == 0 {
			t.Fatalf("device %q has no journaled history on shard %d after rebalance", id, owner)
		}
	}

	// Idempotence: reopening at the same count rebalances nothing.
	if err := c3.Close(ctx); err != nil {
		t.Fatal(err)
	}
	c3b, rep, err := Open(Config{Shards: 3, DataDir: dir, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	defer c3b.Close(ctx)
	if rep != nil {
		t.Fatalf("same-count reopen rebalanced: %+v", rep)
	}
}

// TestRebalanceShrink: leaving shards ship everything they own back onto
// the survivors; nothing moves between survivors.
func TestRebalanceShrink(t *testing.T) {
	dir := t.TempDir()
	base := service.Config{Workers: 2, ScrapeInterval: -1}
	c, _, err := Open(Config{Shards: 3, DataDir: dir, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqs := simRequests(9)
	want := make([]string, len(reqs))
	for i, req := range reqs {
		res, err := c.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = normalize(t, res)
	}
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}

	c2, rep, err := Open(Config{Shards: 2, DataDir: dir, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close(ctx)
	if rep == nil {
		t.Fatal("shrink produced no report")
	}
	for _, mv := range rep.Moved {
		if mv.To >= 2 {
			t.Fatalf("shrink shipped %+v onto a removed shard", mv)
		}
	}
	for i, req := range reqs {
		res, err := c2.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("request %d re-extracted after shrink", i)
		}
		if normalize(t, res) != want[i] {
			t.Fatalf("request %d changed across shrink", i)
		}
	}
}
