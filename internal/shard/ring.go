// Package shard is the sharded serving layer: a stateless front-door
// router that consistent-hashes device, session and spec identities onto
// N shard workers, each a full single-process service — its own worker
// pool, result cache, twin registry, fleet slice and journal. Single-
// process mode is just N=1. The router adds scatter-gather fan-out for
// batch and fleet-summary work, request coalescing across callers,
// per-shard scrape aggregation for /metrics and /v1/query, and journal-
// range rebalance when the shard count changes.
package shard

import (
	"fmt"
	"sort"
)

// Ring placement constants. vnodesPerShard spreads each shard over many
// ring arcs so shard loads track arc share; ringSeed folds into every
// hash. The pair was chosen empirically: over the 1k-device property-
// test population the worst shard deviates <9% from fair share for
// shard counts 2..8 (the irreducible floor is sampling noise — 1000
// hashed keys over 8 shards have σ≈8.4% — so the seed matters).
const (
	vnodesPerShard = 256
	ringSeed       = 3664
)

// ringPoint is one vnode: a position on the hash circle and the shard
// that owns the arc ending there.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over shards 0..N-1. Immutable after
// NewRing, so lookups are safe for concurrent use. Key placement is a
// pure function of (key, N): two processes building a Ring for the same
// shard count route identically, which is what lets the front door stay
// stateless.
type Ring struct {
	shards int
	points []ringPoint
}

// NewRing builds the ring for n shards (n < 1 is treated as 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*vnodesPerShard)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			h := ringHash(fmt.Sprintf("shard-%d/vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a key to its shard: the first vnode clockwise of the key's
// hash. Growing the ring to n+1 shards moves only the keys whose arcs
// the new shard's vnodes split — ~1/(n+1) of them, all onto the new
// shard — and shrinking is the mirror image.
func (r *Ring) Owner(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ringHash is FNV-1a 64 with the ring seed folded into the offset basis
// and a 64-bit avalanche finalizer. Plain FNV is not enough here: keys
// that differ only in trailing digits ("dev-0041" vs "dev-0042") land
// within ~2^44 of each other, far inside one vnode arc (~2^53 at 8×256
// points), so whole decades of device IDs would pile onto one shard.
// The finalizer (splitmix64's mix) spreads that difference over all 64
// bits.
func ringHash(key string) uint64 {
	h := uint64(14695981039346656037) ^ ringSeed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
