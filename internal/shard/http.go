package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/fastvg/fastvg/internal/service"
)

// The router speaks the same JSON dialect as a shard (see service/api.go)
// so clients cannot tell one process from eight.

// decode parses a JSON body, rejecting unknown fields.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, code int, err error) {
	reply(w, code, map[string]any{"error": err.Error()})
}

// failErr maps errors crossing the front door onto status codes. A
// shard's overload shed must leave the router exactly as it left the
// shard — 429 with a Retry-After hint, never mangled into a 5xx — and a
// killed shard is the router's own 503.
func failErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShardDown):
		fail(w, http.StatusServiceUnavailable, err)
	default:
		fail(w, http.StatusBadRequest, err)
	}
}
