package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/service"
	"github.com/fastvg/fastvg/internal/telemetry"
)

// Config configures a Cluster.
type Config struct {
	// Shards is the worker count; < 1 means 1 (plain single-process
	// serving behind the same front door).
	Shards int
	// DataDir, when set, makes every shard durable: shard i journals
	// under DataDir/shard-i, and DataDir/cluster.json records the shard
	// count the directory was last laid out for (Open rebalances when it
	// changes). Empty runs the whole cluster in memory.
	DataDir string
	// Base is the per-shard service configuration template. The cluster
	// overrides the placement fields per shard — InstanceID becomes
	// "s<i>", DataDir becomes the shard directory (or empty), and
	// Telemetry is cleared so every shard owns its own registry (the
	// router scrapes and merges them).
	Base service.Config
}

// Cluster is N shard workers behind one stateless front door. Each shard
// is a complete service — its own worker pool, result cache, twin
// registry, fleet slice and journal — and the router consistent-hashes
// request identities onto them: spec/benchmark jobs by RouteKey, fleet
// devices by device ID, job polls and session calls by the shard prefix
// minted into their IDs. Batch and fleet-summary work scatter-gathers;
// identical in-flight cacheable requests coalesce at the router.
type Cluster struct {
	cfg  Config
	ring *Ring

	nodes []*node

	// Router-level telemetry (shard label "router" in the merged scrape).
	tel        *telemetry.Registry
	mRouted    *telemetry.CounterVec // vgx_router_requests_total{shard}
	mCoalesced *telemetry.Counter
	mScatter   *telemetry.Counter

	flightMu sync.Mutex
	flight   map[string]*flightCall

	reqID uint64 // router-minted X-Request-ID counter
}

// node is one shard slot. svc is nil while the shard is down (KillShard
// simulates a crash without closing anything, the kill -9 contract).
type node struct {
	mu  sync.RWMutex
	svc *service.Service
	h   http.Handler
}

func (n *node) get() (*service.Service, http.Handler) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.svc, n.h
}

// flightCall is one in-flight cacheable extraction the router knows
// about; joiners wait for done, then read the shard's cache.
type flightCall struct {
	done chan struct{}
	err  error
}

// ErrShardDown rejects work routed to a killed shard.
var ErrShardDown = errors.New("shard: routed shard is down")

// New builds the cluster and starts every shard. With Config.DataDir set
// the caller is responsible for the layout matching Config.Shards — use
// Open, which reads the manifest and rebalances automatically.
func New(cfg Config) (*Cluster, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	cfg.Shards = n
	tel := telemetry.NewRegistry()
	c := &Cluster{
		cfg:    cfg,
		ring:   NewRing(n),
		nodes:  make([]*node, n),
		tel:    tel,
		flight: make(map[string]*flightCall),
	}
	c.mRouted = tel.CounterVec("vgx_router_requests_total",
		"Requests dispatched by the shard router, by target shard.", "shard")
	c.mCoalesced = tel.Counter("vgx_router_coalesced_total",
		"Cacheable requests joined onto an identical in-flight extraction at the router.")
	c.mScatter = tel.Counter("vgx_router_scatter_total",
		"Scatter-gather fan-outs (batch and fleet-summary work spanning >1 shard).")
	for i := 0; i < n; i++ {
		svc, err := service.New(c.shardConfig(i))
		if err != nil {
			for j := 0; j < i; j++ {
				s, _ := c.nodes[j].get()
				s.Close(context.Background())
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.nodes[i] = &node{svc: svc, h: svc.Handler()}
	}
	return c, nil
}

// Open is the durable entry point: it reads DataDir/cluster.json, ships
// journal ranges between shard directories when the shard count changed
// since the last run (see Rebalance), rewrites the manifest and starts
// the cluster. The report is nil when no rebalance was needed.
func Open(cfg Config) (*Cluster, *RebalanceReport, error) {
	var rep *RebalanceReport
	if cfg.DataDir != "" {
		want := cfg.Shards
		if want < 1 {
			want = 1
		}
		man, ok, err := ReadManifest(cfg.DataDir)
		if err != nil {
			return nil, nil, err
		}
		if ok && man.Shards != want {
			if rep, err = Rebalance(cfg.DataDir, man.Shards, want); err != nil {
				return nil, nil, err
			}
		}
		if err := WriteManifest(cfg.DataDir, Manifest{Shards: want}); err != nil {
			return nil, nil, err
		}
	}
	c, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return c, rep, nil
}

// shardConfig derives shard i's service configuration from the template.
func (c *Cluster) shardConfig(i int) service.Config {
	sc := c.cfg.Base
	sc.InstanceID = fmt.Sprintf("s%d", i)
	sc.Telemetry = nil
	sc.DataDir = ""
	if c.cfg.DataDir != "" {
		sc.DataDir = ShardDir(c.cfg.DataDir, i)
	}
	return sc
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.nodes) }

// Ring exposes the placement ring (read-only).
func (c *Cluster) Ring() *Ring { return c.ring }

// Telemetry exposes the router's own metric registry.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.tel }

// shard returns shard i's live service, or ErrShardDown.
func (c *Cluster) shard(i int) (*service.Service, http.Handler, error) {
	if i < 0 || i >= len(c.nodes) {
		return nil, nil, fmt.Errorf("shard: no shard %d (cluster has %d)", i, len(c.nodes))
	}
	svc, h := c.nodes[i].get()
	if svc == nil {
		return nil, nil, fmt.Errorf("%w: shard %d", ErrShardDown, i)
	}
	return svc, h, nil
}

// each calls fn for every live shard in index order; down shards are
// skipped (the scatter paths degrade instead of failing outright).
func (c *Cluster) each(fn func(i int, svc *service.Service)) {
	for i := range c.nodes {
		if svc, _ := c.nodes[i].get(); svc != nil {
			fn(i, svc)
		}
	}
}

// shardOfID parses the shard prefix the shards mint into job and session
// IDs ("s3-job-000001", "s3-sess-0001").
func (c *Cluster) shardOfID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return 0, false
	}
	num, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(num)
	if err != nil || i < 0 || i >= len(c.nodes) {
		return 0, false
	}
	return i, true
}

// route places a request: session-bound jobs go to the shard named in
// the session ID prefix, everything else hashes its RouteKey on the
// ring.
func (c *Cluster) route(req service.Request) (int, error) {
	key, err := req.RouteKey()
	if err == nil {
		return c.ring.Owner(key), nil
	}
	if !errors.Is(err, service.ErrSessionRoute) {
		return 0, err
	}
	if i, ok := c.shardOfID(req.Session); ok {
		return i, nil
	}
	return 0, fmt.Errorf("shard: session %q has no routable shard prefix", req.Session)
}

// Run executes one request synchronously on its owning shard. Identical
// concurrent cacheable requests coalesce at the router: one caller leads
// and runs the extraction, the rest wait and then read the shard's cache
// — they never occupy a queue slot, so coalesced joins are served even
// when the shard is shedding load.
func (c *Cluster) Run(ctx context.Context, req service.Request) (*service.Result, error) {
	idx, err := c.route(req)
	if err != nil {
		return nil, err
	}
	svc, _, err := c.shard(idx)
	if err != nil {
		return nil, err
	}
	c.mRouted.With(strconv.Itoa(idx)).Inc()
	if !req.Cacheable() {
		return svc.Run(ctx, req)
	}
	hash, err := req.Hash()
	if err != nil {
		return nil, err
	}

	c.flightMu.Lock()
	if fc, ok := c.flight[hash]; ok {
		c.flightMu.Unlock()
		c.mCoalesced.Inc()
		select {
		case <-fc.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fc.err != nil {
			return nil, fc.err
		}
		// The leader completed: this is now a cache hit on the shard and
		// is served without queueing.
		return svc.Run(ctx, req)
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flight[hash] = fc
	c.flightMu.Unlock()

	res, err := svc.Run(ctx, req)
	fc.err = err
	c.flightMu.Lock()
	delete(c.flight, hash)
	c.flightMu.Unlock()
	close(fc.done)
	return res, err
}

// Submit routes an async submission to its owning shard; the returned
// job ID carries the shard prefix, so polls route statelessly.
func (c *Cluster) Submit(ctx context.Context, req service.Request) (service.JobView, error) {
	idx, err := c.route(req)
	if err != nil {
		return service.JobView{}, err
	}
	svc, _, err := c.shard(idx)
	if err != nil {
		return service.JobView{}, err
	}
	c.mRouted.With(strconv.Itoa(idx)).Inc()
	return svc.Submit(ctx, req)
}

// Batch is the scatter-gather path: requests are grouped by owning
// shard, each group runs as one shard-local batch concurrently, and the
// outcomes are merged back into request order — deterministic regardless
// of shard count or scheduling. Routing errors and down shards surface
// as per-item errors, exactly like per-item execution errors.
func (c *Cluster) Batch(ctx context.Context, reqs []service.Request) []service.BatchItem {
	out := make([]service.BatchItem, len(reqs))
	groups := make(map[int][]int)
	for i, req := range reqs {
		idx, err := c.route(req)
		if err != nil {
			out[i] = service.BatchItem{Error: err.Error()}
			continue
		}
		groups[idx] = append(groups[idx], i)
	}
	if len(groups) > 1 {
		c.mScatter.Inc()
	}
	var wg sync.WaitGroup
	for idx, positions := range groups {
		svc, _, err := c.shard(idx)
		if err != nil {
			for _, p := range positions {
				out[p] = service.BatchItem{Error: err.Error()}
			}
			continue
		}
		c.mRouted.With(strconv.Itoa(idx)).Add(int64(len(positions)))
		sub := make([]service.Request, len(positions))
		for k, p := range positions {
			sub[k] = reqs[p]
		}
		wg.Add(1)
		go func(svc *service.Service, positions []int, sub []service.Request) {
			defer wg.Done()
			items := svc.Batch(ctx, sub)
			for k, p := range positions {
				out[p] = items[k]
			}
		}(svc, positions, sub)
	}
	wg.Wait()
	return out
}

// Jobs merges every shard's job listing, shards in index order and each
// shard's jobs in its own submission order.
func (c *Cluster) Jobs() []service.JobView {
	var out []service.JobView
	c.each(func(_ int, svc *service.Service) { out = append(out, svc.Jobs()...) })
	return out
}

// Job routes a job lookup by its ID prefix.
func (c *Cluster) Job(id string) (service.JobView, bool) {
	i, ok := c.shardOfID(id)
	if !ok {
		return service.JobView{}, false
	}
	svc, _, err := c.shard(i)
	if err != nil {
		return service.JobView{}, false
	}
	return svc.Job(id)
}

// Cancel routes a cancellation by job ID prefix.
func (c *Cluster) Cancel(id string) bool {
	i, ok := c.shardOfID(id)
	if !ok {
		return false
	}
	svc, _, err := c.shard(i)
	if err != nil {
		return false
	}
	return svc.Cancel(id)
}

// OpenSim opens a session on a deterministic shard: the device spec's
// canonical identity is hashed on the ring (via a fast-kind probe
// request, whose route key is the spec twin key), so re-opening the same
// device lands where its twin and cache entries live.
func (c *Cluster) OpenSim(spec device.DoubleDotSpec) (service.SessionInfo, error) {
	probe := service.Request{Kind: service.KindFast, Sim: &spec}
	key, err := probe.RouteKey()
	if err != nil {
		return service.SessionInfo{}, err
	}
	idx := c.ring.Owner(key)
	svc, _, err := c.shard(idx)
	if err != nil {
		return service.SessionInfo{}, err
	}
	sess, err := svc.Registry().OpenSim(spec)
	if err != nil {
		return service.SessionInfo{}, err
	}
	return sess.Info(), nil
}

// Sessions merges every shard's session listing, sorted by ID.
func (c *Cluster) Sessions() []service.SessionInfo {
	var out []service.SessionInfo
	c.each(func(_ int, svc *service.Service) { out = append(out, svc.Registry().Sessions()...) })
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CloseSession routes a session close by ID prefix.
func (c *Cluster) CloseSession(id string) bool {
	i, ok := c.shardOfID(id)
	if !ok {
		return false
	}
	svc, _, err := c.shard(i)
	if err != nil {
		return false
	}
	return svc.Registry().CloseSession(id)
}

// Health merges shard healths: OK only when every shard is up and
// accepting, capacity fields summed, uptime of the oldest shard.
type Health struct {
	OK       bool             `json:"ok"`
	Shards   int              `json:"shards"`
	Down     []int            `json:"down,omitempty"` // killed/unreachable shard indices
	Draining bool             `json:"draining"`
	UptimeS  float64          `json:"uptimeS"`
	Workers  int              `json:"workers"`
	Running  int              `json:"running"`
	Sessions int              `json:"sessions"`
	Fleet    int              `json:"fleet"`
	PerShard []service.Health `json:"perShard"`
}

// Health reports the merged liveness snapshot.
func (c *Cluster) Health() Health {
	h := Health{OK: true, Shards: len(c.nodes), PerShard: make([]service.Health, len(c.nodes))}
	for i := range c.nodes {
		svc, _ := c.nodes[i].get()
		if svc == nil {
			h.OK = false
			h.Down = append(h.Down, i)
			continue
		}
		sh := svc.Health()
		h.PerShard[i] = sh
		h.OK = h.OK && sh.OK
		h.Draining = h.Draining || sh.Draining
		if sh.UptimeS > h.UptimeS {
			h.UptimeS = sh.UptimeS
		}
		h.Workers += sh.Workers
		h.Running += sh.Running
		h.Sessions += sh.Sessions
		h.Fleet += sh.Fleet
	}
	return h
}

// KillShard simulates a crash of shard i: the slot is emptied without
// draining, closing or flushing anything — from the cluster's point of
// view the process took a kill -9. The shard's journal keeps whatever
// was already appended; RestartShard recovers from it. Returns false if
// the shard is already down.
func (c *Cluster) KillShard(i int) bool {
	if i < 0 || i >= len(c.nodes) {
		return false
	}
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.svc == nil {
		return false
	}
	n.svc, n.h = nil, nil
	return true
}

// RestartShard brings a killed shard back: a fresh service opens the
// same shard directory and warm-starts from its journal (cache, twins,
// fleet state), exactly like a process restart on that node.
func (c *Cluster) RestartShard(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("shard: no shard %d (cluster has %d)", i, len(c.nodes))
	}
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.svc != nil {
		return fmt.Errorf("shard: shard %d is already up", i)
	}
	svc, err := service.New(c.shardConfig(i))
	if err != nil {
		return err
	}
	n.svc, n.h = svc, svc.Handler()
	return nil
}

// Close drains every live shard concurrently and joins their errors.
func (c *Cluster) Close(ctx context.Context) error {
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i := range c.nodes {
		svc, _ := c.nodes[i].get()
		if svc == nil {
			continue
		}
		wg.Add(1)
		go func(i int, svc *service.Service) {
			defer wg.Done()
			errs[i] = svc.Close(ctx)
		}(i, svc)
	}
	wg.Wait()
	return errors.Join(errs...)
}
