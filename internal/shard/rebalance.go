package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/fastvg/fastvg/internal/service"
	"github.com/fastvg/fastvg/internal/store"
)

// Manifest is DataDir/cluster.json: the shard count the directory's
// journals were last laid out for. Open compares it against the
// requested count and rebalances the difference.
type Manifest struct {
	Shards int `json:"shards"`
}

const manifestName = "cluster.json"

// ShardDir returns shard i's journal directory under the cluster data
// dir.
func ShardDir(dataDir string, i int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%d", i))
}

// ReadManifest reads DataDir/cluster.json; ok is false when the file
// does not exist (a fresh data dir).
func ReadManifest(dataDir string) (Manifest, bool, error) {
	b, err := os.ReadFile(filepath.Join(dataDir, manifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("shard: bad %s: %w", manifestName, err)
	}
	return m, true, nil
}

// WriteManifest writes DataDir/cluster.json atomically.
func WriteManifest(dataDir string, m Manifest) error {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dataDir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dataDir, manifestName))
}

// Move is one journaled key shipped between shards during a rebalance.
type Move struct {
	Kind store.Kind `json:"kind"`
	Key  string     `json:"key"`
	From int        `json:"from"`
	To   int        `json:"to"`
}

// RebalanceReport is the proof of work: exactly which journal ranges
// moved when the shard count changed. Everything not listed here was
// left byte-untouched in its shard's journal — rebalance replays only
// the moved devices' ranges, not whole journals.
type RebalanceReport struct {
	From  int    `json:"from"`  // previous shard count
	To    int    `json:"to"`    // new shard count
	Moved []Move `json:"moved"` // every shipped key, source order
	// Records counts shipped journal records (audit keys ship every
	// record under the key; state keys ship one).
	Records int `json:"records"`
	// SeededClocks lists new shards that received a fleet clock copy so
	// their virtual time agrees with the devices shipped to them.
	SeededClocks []int `json:"seededClocks,omitempty"`
}

// Rebalance reshapes a cluster data dir from `from` shards to `to`
// shards by shipping journal ranges: for every persisted key it computes
// the owner under the new ring and moves only the keys whose owner
// changed — appends on the destination journal, a tombstone on the
// source. Consistent hashing keeps that set small (~|from−to|/max of the
// keys, all onto/off the changed shards).
//
// Placement mirrors the router exactly:
//
//   - cache entries re-derive their RouteKey from the journaled request;
//     chain-pair results and span trees follow their request hash;
//   - fleet device state and its audit events follow the device ID;
//   - surrogate twins follow the identity in their key — "sim/<h>" is its
//     own route key, "chain/<h>/<pair>" follows "chain/<h>",
//     "fleet/<dev>/<pair>" follows the device;
//   - fleet clocks and alert history stay per shard (a new shard that
//     received devices gets a copy of the busiest clock so staleness
//     arithmetic stays sane).
//
// The stores must not be open elsewhere; run before starting the
// cluster (Open does).
func Rebalance(dataDir string, from, to int) (*RebalanceReport, error) {
	if from < 1 {
		from = 1
	}
	if to < 1 {
		to = 1
	}
	rep := &RebalanceReport{From: from, To: to}
	if from == to {
		return rep, nil
	}
	ring := NewRing(to)
	max := from
	if to > max {
		max = to
	}
	stores := make([]*store.Store, max)
	defer func() {
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}()
	for i := 0; i < max; i++ {
		st, err := store.Open(ShardDir(dataDir, i), store.Options{})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		stores[i] = st
	}

	// Pass 1 over every source journal: decide each key's new owner.
	// Request hashes learned from cache entries place the chain-pair and
	// span records that share them.
	hashOwner := make(map[string]int)
	type clockInfo struct {
		data []byte
		now  float64
	}
	var bestClock clockInfo
	hasClock := make([]bool, max)
	hasDevices := make([]bool, max)

	owner := func(src int, kind store.Kind, key string) (int, bool) {
		switch kind {
		case store.KindCacheEntry:
			return hashOwner[key], true // filled below before use
		case store.KindFleetDevice, store.KindFleetEvent:
			return ring.Owner(key), true
		case store.KindChainPair, store.KindSpan:
			h := key
			if i := strings.IndexByte(h, '/'); i >= 0 {
				h = h[:i]
			}
			if dst, ok := hashOwner[h]; ok {
				return dst, true
			}
			return src, true // orphan (evicted request): stays put
		case store.KindSurrogateModel:
			parts := strings.Split(key, "/")
			switch {
			case parts[0] == "sim":
				return ring.Owner(key), true
			case parts[0] == "chain" && len(parts) >= 2:
				return ring.Owner("chain/" + parts[1]), true
			case parts[0] == "fleet" && len(parts) >= 2:
				return ring.Owner(parts[1]), true
			}
			return src, true
		default:
			// Clocks and alert history are per-process, not per-device.
			return src, false
		}
	}

	for src := 0; src < from; src++ {
		for _, rec := range stores[src].Records(store.KindCacheEntry) {
			var cr struct {
				Request service.Request `json:"request"`
			}
			if json.Unmarshal(rec.Data, &cr) != nil {
				hashOwner[rec.Key] = src // unreadable: leave in place
				continue
			}
			rk, err := cr.Request.RouteKey()
			if err != nil {
				hashOwner[rec.Key] = src
				continue
			}
			hashOwner[rec.Key] = ring.Owner(rk)
		}
		if recs := stores[src].Records(store.KindFleetClock); len(recs) > 0 {
			hasClock[src] = true
			var pc struct {
				Now float64 `json:"now"`
			}
			data := recs[len(recs)-1].Data
			_ = json.Unmarshal(data, &pc)
			if bestClock.data == nil || pc.Now > bestClock.now {
				bestClock = clockInfo{data: data, now: pc.Now}
			}
		}
	}

	// Pass 2: ship. Audit kinds move every record under the key, in
	// journal order, so replayed history stays ordered on the
	// destination.
	kinds := []store.Kind{
		store.KindCacheEntry, store.KindChainPair, store.KindSpan,
		store.KindFleetDevice, store.KindFleetEvent, store.KindSurrogateModel,
	}
	for src := 0; src < from; src++ {
		for _, kind := range kinds {
			recs := stores[src].Records(kind)
			movedKeys := make(map[string]int)
			for _, rec := range recs {
				dst, routable := owner(src, kind, rec.Key)
				if !routable || dst == src {
					continue
				}
				if err := stores[dst].Put(kind, rec.Key, rec.Data); err != nil {
					return nil, fmt.Errorf("shard %d<-%d %v %q: %w", dst, src, kind, rec.Key, err)
				}
				rep.Records++
				if _, seen := movedKeys[rec.Key]; !seen {
					movedKeys[rec.Key] = dst
					rep.Moved = append(rep.Moved, Move{Kind: kind, Key: rec.Key, From: src, To: dst})
				}
				hasDevices[dst] = hasDevices[dst] || kind == store.KindFleetDevice
			}
			// Tombstone each moved key once; for audit kinds this drops
			// every shipped record under the key.
			keys := make([]string, 0, len(movedKeys))
			for k := range movedKeys {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := stores[src].Delete(kind, k); err != nil {
					return nil, fmt.Errorf("shard %d del %v %q: %w", src, kind, k, err)
				}
			}
		}
	}

	// A brand-new shard that received fleet devices needs a clock: copy
	// the most-advanced source clock so shipped devices' staleness (now −
	// last check) stays non-negative and the ID counter cannot re-mint a
	// shipped device's auto ID.
	for i := 0; i < max; i++ {
		if hasDevices[i] && !hasClock[i] && bestClock.data != nil {
			if err := stores[i].Put(store.KindFleetClock, "", bestClock.data); err != nil {
				return nil, fmt.Errorf("shard %d clock seed: %w", i, err)
			}
			rep.SeededClocks = append(rep.SeededClocks, i)
		}
	}

	// Compact everything: sources drop their tombstoned ranges from disk,
	// destinations fold the shipped appends into their snapshots.
	for i := 0; i < max; i++ {
		if err := stores[i].Compact(); err != nil {
			return nil, fmt.Errorf("shard %d compact: %w", i, err)
		}
	}
	return rep, nil
}
