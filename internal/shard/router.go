package shard

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/fastvg/fastvg/internal/alert"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/service"
	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/tsdb"
)

// Handler returns the front door: the same HTTP surface a single service
// serves (see service.Handler), behind routing and scatter-gather.
//
// Routed verbatim to one shard — the owner of the request's identity:
//
//	POST   /v1/jobs                  RouteKey on the ring (sessions by ID prefix)
//	GET    /v1/jobs/{id}             shard prefix in the job ID
//	DELETE /v1/jobs/{id}             shard prefix in the job ID
//	POST   /v1/sessions              spec twin key on the ring
//	DELETE /v1/sessions/{id}         shard prefix in the session ID
//	/v1/fleet/devices/{id}...        device ID on the ring (proxied, so the
//	                                 shard's own status codes and headers —
//	                                 including 429 Retry-After — pass through)
//	GET    /v1/spans/{hash}          first shard that has the span tree
//
// Scatter-gather, merged deterministically (shard index order):
//
//	POST /v1/batch       grouped by owner, merged back into request order
//	GET  /v1/jobs        all shards' jobs, shard order then submission order
//	GET  /v1/sessions    merged, ID order
//	GET  /v1/surrogate   merged, key order
//	POST /v1/surrogate/train  fanned out; per-shard trained maps merged
//	GET  /v1/stats       summed, with a per-shard breakdown under "shards"
//	GET  /v1/fleet       summed counters, max clock, devices in ID order
//	POST /v1/fleet/tick  same tick applied to every shard's virtual clock
//	GET  /v1/spans       union of journaled hashes
//	GET  /v1/alerts      per-shard boards, rules prefixed "s<i>/"
//	GET  /v1/query       per-shard evaluation, series labelled {shard="i"}
//	                     (?shard=i for one shard's verbatim answer)
//	GET  /metrics        per-shard scrapes merged into one exposition with a
//	                     shard label on every sample; the router's own
//	                     families carry shard="router"
//	GET  /v1/healthz     rollup: ok = every shard up and accepting
//
// POST /v1/fleet/devices requires an explicit device ID on a multi-shard
// cluster (auto-minted IDs could not be routed back), and routes it on
// the ring. GET /debug/bundle takes ?shard=i (default 0) — a bundle is a
// per-process flight recording.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if !decode(w, r, &req) {
			return
		}
		jv, err := c.Submit(r.Context(), req)
		if err != nil {
			failErr(w, err)
			return
		}
		reply(w, http.StatusAccepted, jv)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"jobs": c.Jobs()})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jv, ok := c.Job(r.PathValue("id"))
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, jv)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !c.Cancel(r.PathValue("id")) {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, map[string]any{"cancelled": true})
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Requests []service.Request `json:"requests"`
			Table1   bool              `json:"table1"`
		}
		if !decode(w, r, &body) {
			return
		}
		reqs := body.Requests
		if body.Table1 {
			reqs = append(reqs, service.Table1Requests()...)
		}
		if len(reqs) == 0 {
			fail(w, http.StatusBadRequest, errors.New("empty batch: set requests or table1"))
			return
		}
		reply(w, http.StatusOK, map[string]any{"items": c.Batch(r.Context(), reqs)})
	})

	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		// The suite is identical on every shard; ask any live one.
		svc, ok := c.anyShard()
		if !ok {
			fail(w, http.StatusServiceUnavailable, ErrShardDown)
			return
		}
		reply(w, http.StatusOK, map[string]any{"benchmarks": svc.BenchmarkList()})
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Spec device.DoubleDotSpec `json:"spec"`
		}
		if !decode(w, r, &body) {
			return
		}
		info, err := c.OpenSim(body.Spec)
		if err != nil {
			if errors.Is(err, ErrShardDown) {
				fail(w, http.StatusServiceUnavailable, err)
				return
			}
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"sessions": c.Sessions()})
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !c.CloseSession(r.PathValue("id")) {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, map[string]any{"closed": true})
	})

	mux.HandleFunc("GET /v1/surrogate", func(w http.ResponseWriter, r *http.Request) {
		var twins []service.SurrogateInfo
		c.each(func(_ int, svc *service.Service) { twins = append(twins, svc.Surrogates()...) })
		sort.Slice(twins, func(i, j int) bool { return twins[i].Key < twins[j].Key })
		reply(w, http.StatusOK, map[string]any{"twins": twins})
	})

	mux.HandleFunc("POST /v1/surrogate/train", func(w http.ResponseWriter, r *http.Request) {
		trained := make(map[string]int)
		var firstErr error
		c.each(func(_ int, svc *service.Service) {
			fed, err := svc.TrainSurrogates()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			for k, v := range fed {
				trained[k] += v
			}
		})
		if firstErr != nil {
			fail(w, http.StatusBadRequest, firstErr)
			return
		}
		reply(w, http.StatusOK, map[string]any{"trained": trained})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, c.statsBody())
	})

	mux.HandleFunc("POST /v1/fleet/devices", func(w http.ResponseWriter, r *http.Request) {
		var cfg fleet.DeviceConfig
		if !decode(w, r, &cfg) {
			return
		}
		if cfg.ID == "" && len(c.nodes) > 1 {
			fail(w, http.StatusBadRequest, errors.New(
				"sharded fleet registration needs an explicit device id: auto-minted ids cannot be routed"))
			return
		}
		idx := 0
		if cfg.ID != "" {
			idx = c.ring.Owner(cfg.ID)
		}
		svc, _, err := c.shard(idx)
		if err != nil {
			fail(w, http.StatusServiceUnavailable, err)
			return
		}
		dv, err := svc.Fleet().Register(cfg)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusCreated, dv)
	})

	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, c.fleetStatus())
	})

	// Per-device fleet calls are proxied whole to the owning shard so its
	// status codes, bodies and headers pass through untouched.
	perDevice := func(w http.ResponseWriter, r *http.Request) {
		idx := c.ring.Owner(r.PathValue("id"))
		c.proxy(idx, w, r)
	}
	mux.HandleFunc("GET /v1/fleet/devices/{id}", perDevice)
	mux.HandleFunc("GET /v1/fleet/devices/{id}/history", perDevice)
	mux.HandleFunc("POST /v1/fleet/devices/{id}/recalibrate", perDevice)

	mux.HandleFunc("POST /v1/fleet/tick", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			AdvanceS float64 `json:"advanceS"`
			Ticks    int     `json:"ticks"`
		}
		if !decode(w, r, &body) {
			return
		}
		if body.Ticks <= 0 {
			body.Ticks = 1
		}
		if body.Ticks > 100000 {
			fail(w, http.StatusBadRequest, errors.New("ticks out of range"))
			return
		}
		// Every shard's virtual clock advances by the same schedule, so
		// the fleet stays on one logical timeline; shards tick
		// concurrently — each owns a disjoint device slice.
		type shardTicks struct {
			Shard   int                `json:"shard"`
			Now     float64            `json:"now"`
			Reports []fleet.TickReport `json:"reports"`
		}
		results := make([]*shardTicks, len(c.nodes))
		var wg sync.WaitGroup
		var tickErr atomic.Value
		c.each(func(i int, svc *service.Service) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st := &shardTicks{Shard: i}
				for t := 0; t < body.Ticks; t++ {
					rep, err := svc.Fleet().Tick(r.Context(), body.AdvanceS)
					if err != nil {
						tickErr.Store(err)
						return
					}
					st.Reports = append(st.Reports, rep)
				}
				st.Now = svc.Fleet().Now()
				svc.ScrapeNow(st.Now)
				results[i] = st
			}()
		})
		wg.Wait()
		if err, _ := tickErr.Load().(error); err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		var now float64
		shards := make([]*shardTicks, 0, len(results))
		for _, st := range results {
			if st == nil {
				continue
			}
			if st.Now > now {
				now = st.Now
			}
			shards = append(shards, st)
		}
		reply(w, http.StatusOK, map[string]any{"now": now, "shards": shards})
	})

	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		qs := r.URL.Query()
		if v := qs.Get("shard"); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", v))
				return
			}
			c.proxy(i, w, r)
			return
		}
		q := tsdb.Query{Fn: qs.Get("fn"), Series: qs.Get("series")}
		if v := qs.Get("window"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad window %q", v))
				return
			}
			q.WindowS = f
		}
		if v := qs.Get("q"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad q %q", v))
				return
			}
			q.Q = f
		}
		res, err := c.query(q)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		type board struct {
			alerts  []alert.Status
			firing  []string
			history []alert.Event
		}
		var alerts []alert.Status
		var firing []string
		var history []alert.Event
		seen := false
		c.each(func(i int, svc *service.Service) {
			eng := svc.AlertEngine()
			if eng == nil {
				return
			}
			seen = true
			b := board{alerts: eng.Statuses(), firing: eng.Firing(), history: eng.History(64)}
			prefix := fmt.Sprintf("s%d/", i)
			for _, st := range b.alerts {
				st.Rule.Name = prefix + st.Rule.Name
				alerts = append(alerts, st)
			}
			for _, f := range b.firing {
				firing = append(firing, prefix+f)
			}
			for _, ev := range b.history {
				ev.Rule = prefix + ev.Rule
				history = append(history, ev)
			}
		})
		if !seen {
			fail(w, http.StatusNotFound, errors.New("alerts disabled"))
			return
		}
		sort.Slice(history, func(i, j int) bool { return history[i].AtS < history[j].AtS })
		reply(w, http.StatusOK, map[string]any{
			"alerts": alerts, "firing": firing, "history": history,
		})
	})

	mux.HandleFunc("GET /debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		idx := 0
		if v := r.URL.Query().Get("shard"); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", v))
				return
			}
			idx = i
		}
		c.proxy(idx, w, r)
	})

	mux.HandleFunc("GET /v1/spans", func(w http.ResponseWriter, r *http.Request) {
		set := make(map[string]struct{})
		c.each(func(_ int, svc *service.Service) {
			for _, h := range svc.SpanHashes() {
				set[h] = struct{}{}
			}
		})
		hashes := make([]string, 0, len(set))
		for h := range set {
			hashes = append(hashes, h)
		}
		sort.Strings(hashes)
		reply(w, http.StatusOK, map[string]any{"hashes": hashes})
	})

	mux.HandleFunc("GET /v1/spans/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		var sp *telemetry.Span
		c.each(func(_ int, svc *service.Service) {
			if sp != nil {
				return
			}
			if got, ok := svc.SpanTree(hash); ok {
				sp = got
			}
		})
		if sp == nil {
			fail(w, http.StatusNotFound, fmt.Errorf("no span tree for %q", hash))
			return
		}
		reply(w, http.StatusOK, sp)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		body, err := c.mergedMetrics()
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(body))
	})

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := c.Health()
		code := http.StatusOK
		if !h.OK || h.Draining {
			code = http.StatusServiceUnavailable
		}
		reply(w, code, h)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"ok": true})
	})

	// Same request-ID contract as a single shard: adopt or mint, echo,
	// and thread through the context so the owning shard's span carries
	// the front-door ID.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = fmt.Sprintf("router-%06d", atomic.AddUint64(&c.reqID, 1))
		}
		w.Header().Set("X-Request-ID", id)
		r.Header.Set("X-Request-ID", id)
		mux.ServeHTTP(w, r.WithContext(service.WithRequestID(r.Context(), id)))
	})
}

// anyShard returns the lowest-index live shard.
func (c *Cluster) anyShard() (*service.Service, bool) {
	for i := range c.nodes {
		if svc, _ := c.nodes[i].get(); svc != nil {
			return svc, true
		}
	}
	return nil, false
}

// recorder is the in-memory http.ResponseWriter behind proxy: dispatch
// stays in-process (shards are goroutines, not network peers), and every
// header the shard sets — Retry-After above all — survives verbatim.
type recorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func newRecorder() *recorder { return &recorder{header: make(http.Header), code: http.StatusOK} }

func (rec *recorder) Header() http.Header         { return rec.header }
func (rec *recorder) WriteHeader(code int)        { rec.code = code }
func (rec *recorder) Write(b []byte) (int, error) { return rec.buf.Write(b) }

// proxy dispatches the request to shard i's own handler and copies the
// response back — status, body and headers, so a shard's 429 stays a 429
// with its Retry-After, never a router-made 502.
func (c *Cluster) proxy(i int, w http.ResponseWriter, r *http.Request) {
	_, h, err := c.shard(i)
	if err != nil {
		code := http.StatusServiceUnavailable
		if !errors.Is(err, ErrShardDown) {
			code = http.StatusBadRequest
		}
		fail(w, code, err)
		return
	}
	c.mRouted.With(strconv.Itoa(i)).Inc()
	rec := newRecorder()
	h.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		w.Header()[k] = vs
	}
	w.WriteHeader(rec.code)
	_, _ = w.Write(rec.buf.Bytes())
}

// statsBody sums per-shard accounting and keeps the per-shard snapshots
// under "shards" (index order; down shards are null).
func (c *Cluster) statsBody() map[string]any {
	var cache service.CacheStats
	var surr service.SurrogateStats
	jobs := make(map[string]int)
	sessions, workers, running := 0, 0, 0
	var submitted, completed, failed, cancelled int64
	perShard := make([]*service.Stats, len(c.nodes))
	c.each(func(i int, svc *service.Service) {
		st := svc.Stats()
		perShard[i] = &st
		cache.Capacity += st.Cache.Capacity
		cache.Entries += st.Cache.Entries
		cache.Hits += st.Cache.Hits
		cache.Misses += st.Cache.Misses
		cache.Coalesced += st.Cache.Coalesced
		cache.Evictions += st.Cache.Evictions
		for k, v := range st.Jobs {
			jobs[k] += v
		}
		sessions += st.Sessions
		workers += st.Scheduler.Workers
		running += st.Scheduler.Running
		submitted += st.Scheduler.Submitted
		completed += st.Scheduler.Completed
		failed += st.Scheduler.Failed
		cancelled += st.Scheduler.Cancelled
		surr.Models += st.Surrogate.Models
		surr.Fitted += st.Surrogate.Fitted
		surr.Hits += st.Surrogate.Hits
		surr.Escalations += st.Surrogate.Escalations
	})
	return map[string]any{
		"cache":   cache,
		"hitRate": cache.HitRate(),
		"scheduler": map[string]any{
			"workers": workers, "running": running, "submitted": submitted,
			"completed": completed, "failed": failed, "cancelled": cancelled,
		},
		"jobs":      jobs,
		"sessions":  sessions,
		"surrogate": surr,
		"shards":    perShard,
	}
}

// fleetStatus merges per-shard fleet status: one logical fleet on one
// virtual clock (max across shards — ticks apply to all), capacity and
// work counters summed, devices re-sorted into ID order.
func (c *Cluster) fleetStatus() fleet.Status {
	var out fleet.Status
	c.each(func(_ int, svc *service.Service) {
		st := svc.Fleet().Status()
		if st.Now > out.Now {
			out.Now = st.Now
		}
		if st.BudgetWindowS > out.BudgetWindowS {
			out.BudgetWindowS = st.BudgetWindowS
		}
		if st.WorstStaleness > out.WorstStaleness {
			out.WorstStaleness = st.WorstStaleness
		}
		out.DeviceCount += st.DeviceCount
		out.PairCount += st.PairCount
		out.Budget += st.Budget
		out.BudgetUsed += st.BudgetUsed
		out.Checks += st.Checks
		out.Calibrations += st.Calibrations
		out.Recalibrations += st.Recalibrations
		out.PartialRecals += st.PartialRecals
		out.Forced += st.Forced
		out.FailedCals += st.FailedCals
		out.LostEvents += st.LostEvents
		out.ProbesSpent += st.ProbesSpent
		out.ProbesSaved += st.ProbesSaved
		out.MaxWindowProbes += st.MaxWindowProbes
		out.SkippedBudget += st.SkippedBudget
		out.Devices = append(out.Devices, st.Devices...)
	})
	sort.Slice(out.Devices, func(i, j int) bool { return out.Devices[i].ID < out.Devices[j].ID })
	return out
}

// query evaluates one tsdb query on every live shard and merges the
// answers: each shard's series gain a {shard="i"} label, AtS is the
// newest evaluation instant. fn=range dumps merge the same way.
func (c *Cluster) query(q tsdb.Query) (tsdb.Result, error) {
	out := tsdb.Result{Fn: q.Fn, Series: q.Series, WindowS: q.WindowS, Q: q.Q}
	var firstErr error
	c.each(func(i int, svc *service.Service) {
		res, err := svc.TSDB().Query(q)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		if res.AtS > out.AtS {
			out.AtS = res.AtS
		}
		tag := fmt.Sprintf("shard=\"%d\"", i)
		for _, v := range res.Values {
			v.Series = stampSeries(v.Series, tag)
			out.Values = append(out.Values, v)
		}
		for _, d := range res.Range {
			d.Series = stampSeries(d.Series, tag)
			out.Range = append(out.Range, d)
		}
	})
	if firstErr != nil {
		return tsdb.Result{}, firstErr
	}
	return out, nil
}

// stampSeries injects a label pair into a series signature of the form
// name or name{k="v",...}.
func stampSeries(series, tag string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i+1] + tag + "," + series[i+1:]
	}
	return series + "{" + tag + "}"
}

// mergedMetrics scrapes every live shard's registry plus the router's
// own, stamps each sample with its shard label and merges families by
// name — one exposition, per-shard series distinguishable, ready for the
// same Parse that built it.
func (c *Cluster) mergedMetrics() (string, error) {
	type scrape struct {
		label string
		text  string
	}
	var scrapes []scrape
	c.each(func(i int, svc *service.Service) {
		scrapes = append(scrapes, scrape{label: strconv.Itoa(i), text: svc.Telemetry().Expose()})
	})
	scrapes = append(scrapes, scrape{label: "router", text: c.tel.Expose()})

	var order []string
	merged := make(map[string]*telemetry.Family)
	for _, sc := range scrapes {
		fams, err := telemetry.Parse(strings.NewReader(sc.text))
		if err != nil {
			return "", fmt.Errorf("shard %s scrape: %w", sc.label, err)
		}
		for _, f := range fams {
			for si := range f.Samples {
				if f.Samples[si].Labels == nil {
					f.Samples[si].Labels = make(map[string]string, 1)
				}
				f.Samples[si].Labels["shard"] = sc.label
			}
			m, ok := merged[f.Name]
			if !ok {
				merged[f.Name] = f
				order = append(order, f.Name)
				continue
			}
			m.Samples = append(m.Samples, f.Samples...)
		}
	}
	fams := make([]*telemetry.Family, len(order))
	for i, name := range order {
		fams[i] = merged[name]
	}
	return telemetry.RenderFamilies(fams), nil
}
