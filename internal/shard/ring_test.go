package shard

import (
	"fmt"
	"sync"
	"testing"
)

// testDevices is the property-test population: 1k device IDs in the
// fleet's naming convention.
func testDevices() []string {
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("dev-%04d", i)
	}
	return keys
}

// Balance: at 1k devices over 8 shards every shard holds within ±10% of
// its fair share — and the same bound holds at the smaller shard counts
// the benchmarks sweep.
func TestRingBalance(t *testing.T) {
	keys := testDevices()
	for _, n := range []int{2, 3, 4, 8} {
		r := NewRing(n)
		counts := make([]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for s, c := range counts {
			dev := float64(c)/fair - 1
			if dev < -0.10 || dev > 0.10 {
				t.Errorf("n=%d shard %d holds %d keys (fair %.0f, %+.1f%%), outside ±10%%",
					n, s, c, fair, 100*dev)
			}
		}
	}
}

// Join: growing 8 → 9 shards moves at most 2/N of the keys, and every
// key that moves lands on the new shard — nothing reshuffles between
// the survivors.
func TestRingMinimalRemapJoin(t *testing.T) {
	keys := testDevices()
	r8, r9 := NewRing(8), NewRing(9)
	moved := 0
	for _, k := range keys {
		before, after := r8.Owner(k), r9.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != 8 {
			t.Fatalf("key %s moved %d -> %d on join; moves must target the new shard", k, before, after)
		}
	}
	if limit := 2 * len(keys) / 9; moved > limit {
		t.Errorf("join moved %d/%d keys, limit 2/N = %d", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Error("join moved nothing; the new shard would start empty forever")
	}
}

// Leave: shrinking 8 → 7 shards moves at most 2/N of the keys, and
// every key that moves was on the departing shard — survivors keep
// their entire slice.
func TestRingMinimalRemapLeave(t *testing.T) {
	keys := testDevices()
	r8, r7 := NewRing(8), NewRing(7)
	moved := 0
	for _, k := range keys {
		before, after := r8.Owner(k), r7.Owner(k)
		if before == after {
			continue
		}
		moved++
		if before != 7 {
			t.Fatalf("key %s moved %d -> %d on leave; only the departing shard's keys may move", k, before, after)
		}
	}
	if limit := 2 * len(keys) / 8; moved > limit {
		t.Errorf("leave moved %d/%d keys, limit 2/N = %d", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Error("leave moved nothing; the departing shard's keys would be orphaned")
	}
}

// Owner is a pure function of (key, N): concurrent lookups against one
// ring and lookups against an independently built ring agree. Run with
// -race this also locks in that Ring is immutable after construction.
func TestRingDeterministicConcurrent(t *testing.T) {
	keys := testDevices()
	r := NewRing(8)
	want := make([]int, len(keys))
	for i, k := range keys {
		want[i] = r.Owner(k)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := NewRing(8)
			for i, k := range keys {
				if got := r.Owner(k); got != want[i] {
					t.Errorf("concurrent Owner(%s) = %d, want %d", k, got, want[i])
					return
				}
				if got := local.Owner(k); got != want[i] {
					t.Errorf("rebuilt ring Owner(%s) = %d, want %d", k, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}
