package shard

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/service"
)

// The shard benchmarks model the regime the front door exists for:
// instrument-attached nodes where probe dwell is wall time, so a node's
// throughput is pinned by its instrument, not its CPU. Each shard runs
// one worker (one instrument) with EmuDwellScale stretching every job's
// virtual experiment seconds into real dwell; adding shards adds
// instruments, and jobs/sec should scale with the shard count while p99
// holds. Seeds are globally unique so no iteration ever hits the cache.

var benchSeed atomic.Uint64

func init() { benchSeed.Store(10_000) }

// benchRequests mints n never-seen-before cacheable requests.
func benchRequests(n int) []service.Request {
	reqs := make([]service.Request, n)
	for i := range reqs {
		seed := benchSeed.Add(1)
		reqs[i] = service.Request{Kind: service.KindFast,
			Sim: &device.DoubleDotSpec{Pixels: 64, Seed: seed}}
	}
	return reqs
}

// benchDwellScale holds the measured EmuDwellScale stretching one job's
// dwell to ~40ms of wall time.
var (
	benchScaleOnce sync.Once
	benchScale     float64
)

func dwellScale(b *testing.B) float64 {
	benchScaleOnce.Do(func() {
		svc, err := service.New(service.Config{Workers: 1, ScrapeInterval: -1, DisableTelemetry: true})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close(context.Background())
		res, err := svc.Run(context.Background(), benchRequests(1)[0])
		if err != nil {
			b.Fatal(err)
		}
		benchScale = (40 * time.Millisecond).Seconds() / res.ExperimentS
	})
	return benchScale
}

func newBenchCluster(b *testing.B, shards int) *Cluster {
	b.Helper()
	c, err := New(Config{Shards: shards, Base: service.Config{
		Workers: 1, EmuDwellScale: dwellScale(b), ScrapeInterval: -1, DisableTelemetry: true,
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close(context.Background()) })
	return c
}

// BenchmarkShardThroughput drives 24 concurrent dwell-limited jobs per
// iteration through the router and reports jobs/sec and per-job p99 —
// the BENCH_shard.json series: throughput at 8 shards must be ≥3× the
// 1-shard figure.
func BenchmarkShardThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "shards-1", 2: "shards-2", 4: "shards-4", 8: "shards-8"}[shards],
			func(b *testing.B) {
				c := newBenchCluster(b, shards)
				ctx := context.Background()
				const jobsPerIter = 24
				var lat []time.Duration
				var latMu sync.Mutex
				jobs := 0
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					reqs := benchRequests(jobsPerIter)
					var wg sync.WaitGroup
					for _, req := range reqs {
						wg.Add(1)
						go func(req service.Request) {
							defer wg.Done()
							t0 := time.Now()
							if _, err := c.Run(ctx, req); err != nil {
								b.Error(err)
								return
							}
							d := time.Since(t0)
							latMu.Lock()
							lat = append(lat, d)
							latMu.Unlock()
						}(req)
					}
					wg.Wait()
					jobs += jobsPerIter
				}
				elapsed := time.Since(start)
				b.StopTimer()
				if jobs > 0 && elapsed > 0 {
					b.ReportMetric(float64(jobs)/elapsed.Seconds(), "jobs/s")
				}
				if len(lat) > 0 {
					sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
					idx := len(lat) * 99 / 100
					if idx >= len(lat) {
						idx = len(lat) - 1
					}
					b.ReportMetric(float64(lat[idx])/float64(time.Millisecond), "p99-ms")
				}
			})
	}
}

// BenchmarkScatterGather measures the batch path: one Table-1-sized
// batch of fresh requests per iteration, scattered across shards and
// merged back into request order.
func BenchmarkScatterGather(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(map[int]string{1: "shards-1", 8: "shards-8"}[shards],
			func(b *testing.B) {
				c := newBenchCluster(b, shards)
				ctx := context.Background()
				const batchSize = 24
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					items := c.Batch(ctx, benchRequests(batchSize))
					for _, item := range items {
						if item.Error != "" {
							b.Fatal(item.Error)
						}
					}
				}
				elapsed := time.Since(start)
				b.StopTimer()
				if b.N > 0 && elapsed > 0 {
					b.ReportMetric(float64(b.N*batchSize)/elapsed.Seconds(), "jobs/s")
				}
			})
	}
}
