package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/alert"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/service"
	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/xrand"
)

// smallSpec is the cheap noiseless test device.
func smallSpec(seed uint64) *device.DoubleDotSpec {
	return &device.DoubleDotSpec{Pixels: 64, Seed: seed}
}

// simRequests builds n cheap cacheable requests cycling through kinds.
func simRequests(n int) []service.Request {
	kinds := []service.Kind{service.KindFast, service.KindRays, service.KindAdaptive}
	reqs := make([]service.Request, n)
	for i := range reqs {
		reqs[i] = service.Request{Kind: kinds[i%len(kinds)], Sim: smallSpec(uint64(100 + i))}
	}
	return reqs
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(context.Background()) })
	return c
}

// normalize strips the only non-deterministic fields — wall-clock compute
// time and the per-retrieval cache flag — and returns the result's JSON.
func normalize(t *testing.T, res *service.Result) string {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	cp := *res
	cp.ComputeS = 0 // the only wall-clock field
	cp.Cached = false
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterDeterminismAcrossShardCounts is the acceptance property: the
// same batch through 1 shard and through 8 shards returns byte-identical
// results in the same order — sharding changes where work runs, never
// what it computes. The scatter-gather merge back into request order is
// exercised by the same comparison.
func TestClusterDeterminismAcrossShardCounts(t *testing.T) {
	reqs := simRequests(12)
	c1 := newTestCluster(t, Config{Shards: 1, Base: service.Config{Workers: 2, ScrapeInterval: -1}})
	c8 := newTestCluster(t, Config{Shards: 8, Base: service.Config{Workers: 2, ScrapeInterval: -1}})

	ctx := context.Background()
	items1 := c1.Batch(ctx, reqs)
	items8 := c8.Batch(ctx, reqs)
	for i := range reqs {
		if items1[i].Error != "" || items8[i].Error != "" {
			t.Fatalf("item %d errored: 1-shard %q, 8-shard %q", i, items1[i].Error, items8[i].Error)
		}
		got1, got8 := normalize(t, items1[i].Result), normalize(t, items8[i].Result)
		if got1 != got8 {
			t.Errorf("item %d differs across shard counts:\n 1: %s\n 8: %s", i, got1, got8)
		}
	}

	// Routing is deterministic and spreads this workload: the 8-shard
	// cluster must have used more than one shard.
	used := make(map[int]bool)
	for _, req := range reqs {
		idx, err := c8.route(req)
		if err != nil {
			t.Fatal(err)
		}
		used[idx] = true
	}
	if len(used) < 2 {
		t.Fatalf("12 distinct requests all routed to %d shard(s)", len(used))
	}
}

// TestRouterCoalescing pins the join path deterministically: a request
// whose hash is already in flight at the router waits for the leader and
// is then served from the owning shard's cache, without a second
// extraction.
func TestRouterCoalescing(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2, Base: service.Config{Workers: 2, ScrapeInterval: -1}})
	req := service.Request{Kind: service.KindFast, Sim: smallSpec(7)}
	hash, err := req.Hash()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.route(req)
	if err != nil {
		t.Fatal(err)
	}
	svc, _, err := c.shard(idx)
	if err != nil {
		t.Fatal(err)
	}

	// Plant an in-flight marker, start a joiner, then complete the
	// "leader's" extraction and release the marker.
	fc := &flightCall{done: make(chan struct{})}
	c.flightMu.Lock()
	c.flight[hash] = fc
	c.flightMu.Unlock()

	type outcome struct {
		res *service.Result
		err error
	}
	joined := make(chan outcome, 1)
	go func() {
		res, err := c.Run(context.Background(), req)
		joined <- outcome{res, err}
	}()

	select {
	case o := <-joined:
		t.Fatalf("joiner returned before the leader finished: %+v, %v", o.res, o.err)
	case <-time.After(50 * time.Millisecond):
	}

	want, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	c.flightMu.Lock()
	delete(c.flight, hash)
	c.flightMu.Unlock()
	close(fc.done)

	o := <-joined
	if o.err != nil {
		t.Fatal(o.err)
	}
	if !o.res.Cached {
		t.Fatal("joiner's result must come from the shard cache")
	}
	if normalize(t, o.res) != normalize(t, want) {
		t.Fatal("joiner's result differs from the leader's")
	}
	if got := c.mCoalesced.Value(); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}

	// Concurrent identical leaders race safely and agree.
	const callers = 6
	outs := make(chan outcome, callers)
	req2 := service.Request{Kind: service.KindRays, Sim: smallSpec(8)}
	for i := 0; i < callers; i++ {
		go func() {
			res, err := c.Run(context.Background(), req2)
			outs <- outcome{res, err}
		}()
	}
	var first string
	for i := 0; i < callers; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if n := normalize(t, o.res); first == "" {
			first = n
		} else if n != first {
			t.Fatal("concurrent identical runs disagree")
		}
	}
}

// TestSubmitRoutesByIDPrefix: async jobs land on the ring-owner shard,
// their minted IDs carry that shard, and polls route back statelessly.
func TestSubmitRoutesByIDPrefix(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 4, Base: service.Config{Workers: 2, ScrapeInterval: -1}})
	ctx := context.Background()
	for i, req := range simRequests(4) {
		want, err := c.route(req)
		if err != nil {
			t.Fatal(err)
		}
		jv, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		prefix := fmt.Sprintf("s%d-", want)
		if !strings.HasPrefix(jv.ID, prefix) {
			t.Fatalf("job %d: id %q does not carry owner prefix %q", i, jv.ID, prefix)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			got, ok := c.Job(jv.ID)
			if !ok {
				t.Fatalf("job %q not found via prefix routing", jv.ID)
			}
			if got.Status == service.StatusDone {
				break
			}
			if got.Status == service.StatusFailed || got.Status == service.StatusCancelled {
				t.Fatalf("job %q settled %s: %s", jv.ID, got.Status, got.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %q still %s", jv.ID, got.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// dwellScaleFor measures one extraction's virtual experiment time and
// returns the EmuDwellScale that stretches it to the target wall clock.
func dwellScaleFor(t *testing.T, req service.Request, target time.Duration) float64 {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 1, ScrapeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	res, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExperimentS <= 0 {
		t.Fatalf("probe request has no dwell time: %+v", res)
	}
	return target.Seconds() / res.ExperimentS
}

// TestOverloadRetryAfterThroughRouter is the satellite regression: a
// shard's 429 must cross the front door as a 429 with its Retry-After
// hint — never remapped to a 5xx — and the typed service.ErrOverloaded
// must survive the routed Submit path for errors.Is checks.
func TestOverloadRetryAfterThroughRouter(t *testing.T) {
	// Find 8 distinct requests that all route to shard 0 of 2, so one
	// worker slot takes all the pressure.
	ring := NewRing(2)
	var reqs []service.Request
	for seed := uint64(500); len(reqs) < 8; seed++ {
		req := service.Request{Kind: service.KindFast, Sim: smallSpec(seed)}
		key, err := req.RouteKey()
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == 0 {
			reqs = append(reqs, req)
		}
	}
	scale := dwellScaleFor(t, reqs[0], 400*time.Millisecond)

	c := newTestCluster(t, Config{Shards: 2, Base: service.Config{
		Workers: 1, MaxQueueDepth: 1, EmuDwellScale: scale, ScrapeInterval: -1,
	}})
	h := c.Handler()

	accepted, shed := 0, 0
	for _, req := range reqs {
		// Submissions are async: give each a beat to reach the pool so
		// the queue depth is visible to the next admission check.
		time.Sleep(25 * time.Millisecond)
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		switch w.Code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			shed++
			if got := w.Header().Get("Retry-After"); got != "1" {
				t.Fatalf("429 without Retry-After hint (got %q)", got)
			}
		default:
			t.Fatalf("unexpected status %d through the router: %s", w.Code, w.Body.String())
		}
		if w.Code >= 500 {
			t.Fatalf("overload leaked as %d", w.Code)
		}
	}
	if accepted == 0 || shed == 0 {
		t.Fatalf("want both accepted and shed submissions, got %d accepted / %d shed", accepted, shed)
	}

	// Typed path: the routed Submit returns the service's sentinel.
	var typedErr error
	for _, req := range reqs {
		if _, err := c.Submit(context.Background(), req); err != nil {
			typedErr = err
			break
		}
	}
	if typedErr == nil {
		t.Fatal("no overload error surfaced on direct Submit while the shard is saturated")
	}
	if !errors.Is(typedErr, service.ErrOverloaded) {
		t.Fatalf("overload error lost its type through the router: %v", typedErr)
	}
}

// pickOwnedRequest returns a request from reqs owned by shard idx, or
// fails.
func pickOwnedRequest(t *testing.T, c *Cluster, reqs []service.Request, idx int) service.Request {
	t.Helper()
	for _, req := range reqs {
		o, err := c.route(req)
		if err != nil {
			t.Fatal(err)
		}
		if o == idx {
			return req
		}
	}
	t.Fatalf("no request owned by shard %d", idx)
	return service.Request{}
}

// TestKillRestartShardE2E is the kill -9 satellite: one shard dies with
// no shutdown, the others keep serving, and a restart of the dead shard
// recovers its cache entries, fleet slice and firing alerts from its own
// journal alone.
func TestKillRestartShardE2E(t *testing.T) {
	dir := t.TempDir()
	// A rule that fires as soon as a shard holds a cache entry — a
	// deterministic alert to observe across the kill.
	cfg := Config{Shards: 3, DataDir: dir, Base: service.Config{
		Workers: 2, ScrapeInterval: -1,
		AlertRules: []alert.Rule{{
			Name: "cache-present", Severity: "warning",
			Expr: alert.Expr{Fn: "last", Series: "vgx_service_cache_entries"},
			Op:   ">", Threshold: 0,
		}},
	}}
	c, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(context.Background()) })
	ctx := context.Background()

	reqs := simRequests(6)
	want := make(map[int]string)
	for i, req := range reqs {
		res, err := c.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = normalize(t, res)
	}

	// Fleet devices with explicit IDs spread across shards.
	spec, err := fleet.ProfileSpec(fleet.ProfileStandard, xrand.DeriveSeed(9, 1))
	if err != nil {
		t.Fatal(err)
	}
	deviceIDs := []string{"dev-alpha", "dev-beta", "dev-gamma", "dev-delta"}
	for _, id := range deviceIDs {
		svc, _, err := c.shard(c.ring.Owner(id))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Fleet().Register(fleet.DeviceConfig{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}

	// Tick through the router: every shard advances and scrapes, so the
	// cache-present rule evaluates (and fires) on shards with entries.
	h := c.Handler()
	r := httptest.NewRequest("POST", "/v1/fleet/tick", strings.NewReader(`{"advanceS":300,"ticks":3}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("tick: %d %s", w.Code, w.Body.String())
	}

	// The victim: the owner of request 0.
	victim, err := c.route(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	victimSvc, _, err := c.shard(victim)
	if err != nil {
		t.Fatal(err)
	}
	firingBefore := victimSvc.AlertEngine().Firing()
	if len(firingBefore) == 0 {
		t.Fatal("victim shard has no firing alert before the kill; the restart check would be vacuous")
	}
	var victimDevice string
	for _, id := range deviceIDs {
		if c.ring.Owner(id) == victim {
			victimDevice = id
			break
		}
	}

	if !c.KillShard(victim) {
		t.Fatal("KillShard refused")
	}
	if h := c.Health(); h.OK || len(h.Down) != 1 || h.Down[0] != victim {
		t.Fatalf("health after kill = %+v", h)
	}

	// Other shards serve on: a request they own is a cache hit.
	other := (victim + 1) % 3
	otherReq := pickOwnedRequest(t, c, reqs, other)
	res, err := c.Run(ctx, otherReq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("surviving shard lost its cache")
	}
	// The victim's slice is refused, typed.
	if _, err := c.Run(ctx, reqs[0]); !errors.Is(err, ErrShardDown) {
		t.Fatalf("routed to dead shard: err = %v", err)
	}

	if err := c.RestartShard(victim); err != nil {
		t.Fatal(err)
	}
	// Cache recovered: the victim's requests are hits with identical bytes.
	for i, req := range reqs {
		o, err := c.route(req)
		if err != nil || o != victim {
			continue
		}
		res, err := c.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("request %d not served from the restarted shard's journal", i)
		}
		if normalize(t, res) != want[i] {
			t.Fatalf("request %d changed across kill/restart", i)
		}
	}
	// Fleet slice recovered.
	restarted, _, err := c.shard(victim)
	if err != nil {
		t.Fatal(err)
	}
	if victimDevice != "" {
		if _, ok := restarted.Fleet().Device(victimDevice); !ok {
			t.Fatalf("fleet device %q lost across kill/restart", victimDevice)
		}
	}
	// Firing alerts recovered from the journaled transitions.
	firingAfter := restarted.AlertEngine().Firing()
	if strings.Join(firingAfter, ",") != strings.Join(firingBefore, ",") {
		t.Fatalf("firing set changed across kill/restart: %v -> %v", firingBefore, firingAfter)
	}
}

// TestMergedMetricsAndQuery: the router's /metrics is one parseable
// exposition with every sample shard-labelled (router families included),
// and /v1/query merges per-shard series under shard labels.
func TestMergedMetricsAndQuery(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2, Base: service.Config{Workers: 1, ScrapeInterval: -1}})
	ctx := context.Background()
	if _, err := c.Run(ctx, service.Request{Kind: service.KindFast, Sim: smallSpec(21)}); err != nil {
		t.Fatal(err)
	}
	c.each(func(_ int, svc *service.Service) { svc.ScrapeNow(100) })
	h := c.Handler()

	r := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	fams, err := telemetry.Parse(strings.NewReader(w.Body.String()))
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v", err)
	}
	labels := make(map[string]bool)
	var routed bool
	for _, f := range fams {
		if f.Name == "vgx_router_requests_total" {
			routed = true
		}
		for _, s := range f.Samples {
			v, ok := s.Labels["shard"]
			if !ok {
				t.Fatalf("sample %s has no shard label", s.Name)
			}
			labels[v] = true
		}
	}
	if !routed {
		t.Fatal("router's own families missing from the merged exposition")
	}
	for _, wantLabel := range []string{"0", "1", "router"} {
		if !labels[wantLabel] {
			t.Fatalf("no samples labelled shard=%q (have %v)", wantLabel, labels)
		}
	}

	r = httptest.NewRequest("GET", "/v1/query?fn=last&series=vgx_service_cache_entries", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/query: %d %s", w.Code, w.Body.String())
	}
	var qres struct {
		Values []struct {
			Series string   `json:"series"`
			Value  *float64 `json:"value"`
		} `json:"values"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &qres); err != nil {
		t.Fatal(err)
	}
	if len(qres.Values) < 2 {
		t.Fatalf("merged query returned %d series, want one per shard", len(qres.Values))
	}
	for _, v := range qres.Values {
		if !strings.Contains(v.Series, `shard="`) {
			t.Fatalf("merged series %q lacks shard label", v.Series)
		}
	}
}
