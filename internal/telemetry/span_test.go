package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestSpanTree builds a small job→pipeline→pair→probes tree, round-trips
// it through Encode/DecodeSpan, and checks Render output.
func TestSpanTree(t *testing.T) {
	job := StartSpan("job", Attr{K: "kind", V: "chain"}, Attr{K: "hash", V: "ab12"})
	pipe := job.Child("pipeline", Attr{K: "method", V: "chain"})
	pair := pipe.Child("pair", AttrInt("pair", 0), Attr{K: "method", V: "fast"})
	probes := pair.Child("probes", AttrInt("count", 728))
	probes.SetVirtual(7300 * time.Millisecond)
	probes.SetWall(580 * time.Microsecond)
	pair.SetVirtual(7300 * time.Millisecond)
	pair.End()
	pipe.SetVirtual(21800 * time.Millisecond)
	pipe.End()
	job.SetVirtual(21800 * time.Millisecond)
	job.End()

	b, err := job.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeSpan(b)
	if err != nil {
		t.Fatalf("DecodeSpan: %v", err)
	}
	if got.Name != "job" || got.Attr("kind") != "chain" || got.Attr("hash") != "ab12" {
		t.Errorf("root = %q attrs %v", got.Name, got.Attrs)
	}
	if got.VirtNS != (21800 * time.Millisecond).Nanoseconds() {
		t.Errorf("root virtual = %d", got.VirtNS)
	}
	if len(got.Children) != 1 || len(got.Children[0].Children) != 1 {
		t.Fatalf("tree shape lost: %+v", got)
	}
	leaf := got.Children[0].Children[0].Children[0]
	if leaf.Name != "probes" || leaf.Attr("count") != "728" {
		t.Errorf("leaf = %q %v", leaf.Name, leaf.Attrs)
	}

	var sb strings.Builder
	got.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"job wall=", "virtual=21.8s kind=chain hash=ab12",
		"\n  pipeline wall=", "\n    pair wall=",
		"\n      probes wall=580µs virtual=7.3s count=728\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// TestSpanSortChildren checks the numeric-aware attribute sort that makes
// concurrently-appended pair children deterministic.
func TestSpanSortChildren(t *testing.T) {
	p := StartSpan("pipeline")
	for _, i := range []int64{10, 2, 0, 11, 1} {
		p.Child("pair", AttrInt("pair", i))
	}
	p.SortChildren("pair")
	var order []string
	for _, c := range p.Children {
		order = append(order, c.Attr("pair"))
	}
	if got := strings.Join(order, ","); got != "0,1,2,10,11" {
		t.Errorf("sorted order = %s, want 0,1,2,10,11", got)
	}
}

// TestSpanContext checks the context plumbing replay paths rely on: no
// span on a fresh context, the stored span back out, nil-safe.
func TestSpanContext(t *testing.T) {
	if sp := SpanFromContext(context.Background()); sp != nil {
		t.Errorf("fresh context carries a span: %+v", sp)
	}
	sp := StartSpan("job")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Errorf("span lost in context round trip")
	}
}

// TestSpanAttrHelpers checks AttrInt/AttrFloat formatting and AddAttr.
func TestSpanAttrHelpers(t *testing.T) {
	if a := AttrInt("n", -42); a.V != "-42" {
		t.Errorf("AttrInt = %q", a.V)
	}
	if a := AttrFloat("x", 0.125); a.V != "0.125" {
		t.Errorf("AttrFloat = %q", a.V)
	}
	sp := StartSpan("job")
	sp.AddAttr(Attr{K: "err", V: "boom"})
	if sp.Attr("err") != "boom" {
		t.Errorf("AddAttr lost")
	}
	if sp.Attr("missing") != "" {
		t.Errorf("missing attr should be empty")
	}
}
