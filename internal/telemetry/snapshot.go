package telemetry

import "sort"

// SamplePoint is one flattened registry sample at scrape time — the
// value-level twin of one exposition line. Family is the registered
// metric name; Name adds the histogram suffix (_bucket/_sum/_count)
// when the family is a histogram; Sig is the full label signature
// including the bucket's le pair.
type SamplePoint struct {
	Family string
	Type   string // "counter" | "gauge" | "histogram"
	Name   string
	Sig    string
	Value  float64
}

// Key renders the sample's stable identity, `name{sig}` — the series
// key the tsdb stores points under.
func (p SamplePoint) Key() string {
	if p.Sig == "" {
		return p.Name
	}
	return p.Name + "{" + p.Sig + "}"
}

// Snapshot samples every registered series as values, in the same
// deterministic order exposition renders them (families by name, series
// by label signature, histogram buckets by bound). It is the scrape
// source for internal/tsdb: one call, one consistent-enough cut of the
// registry (each series is read atomically; the cut across series is
// not a transaction, exactly like a Prometheus scrape). GaugeFunc
// readers run under the registry mutex, as during exposition.
func (r *Registry) Snapshot() []SamplePoint {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	out := make([]SamplePoint, 0, 4*len(names))
	for _, n := range names {
		f := r.families[n]
		sigs := make([]string, 0, len(f.series))
		for s := range f.series {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			f.series[sig].scrape(func(suffix, extra string, v float64) {
				fullSig := sig
				if extra != "" {
					fullSig = joinSig(sig, extra)
				}
				out = append(out, SamplePoint{
					Family: f.name,
					Type:   f.typ,
					Name:   f.name + suffix,
					Sig:    fullSig,
					Value:  v,
				})
			})
		}
	}
	return out
}
