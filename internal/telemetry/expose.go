package telemetry

import (
	"io"
	"net/http"
	"sort"
	"strings"
)

// ContentType is the Prometheus text exposition format version this
// package emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Expose renders every registered family as Prometheus text. Families
// are ordered by name and series by label signature, so output for the
// same logical state is byte-identical across processes — the property
// the worker-count determinism test locks in.
func (r *Registry) Expose() string {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := r.families[n]
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')

		sigs := make([]string, 0, len(f.series))
		for s := range f.series {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, s := range sigs {
			f.series[s].expose(&b, f.name, s)
		}
	}
	return b.String()
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(h)
}

// WriteTo writes the exposition text to w.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, r.Expose())
	return int64(n), err
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — the body behind GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_, _ = r.WriteTo(w)
	})
}
