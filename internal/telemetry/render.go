package telemetry

import (
	"sort"
	"strings"
)

// RenderFamilies writes parsed families back out as Prometheus text, in
// slice order with samples in slice order — the exact inverse of Parse.
// Sample order is preserved rather than re-sorted because histogram
// buckets carry meaning in their numeric le order. The shard router
// merges per-shard scrapes this way: Parse each shard's exposition,
// stamp a shard label on every sample, concatenate families in shard
// order, and render one aggregate page whose format matches what a
// single service emits.
func RenderFamilies(fams []*Family) string {
	var b strings.Builder
	for _, f := range fams {
		// Parse keeps the HELP text in its escaped wire form, so it goes
		// back out verbatim — re-escaping would double the backslashes.
		b.WriteString("# HELP " + f.Name + " " + f.Help + "\n")
		b.WriteString("# TYPE " + f.Name + " " + f.Type + "\n")
		for _, s := range f.Samples {
			b.WriteString(renderSample(s))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// renderSample formats one `name{k="v",...} value` line with labels in
// sorted key order.
func renderSample(s Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k + `="` + escapeLabel(s.Labels[k]) + `"`)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Value))
	return b.String()
}
