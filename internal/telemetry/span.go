package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Spans record where an extraction spent its time as a tree:
//
//	job            — one service job (kind, request hash, request ID)
//	└ pipeline     — one extraction pipeline run (method)
//	  └ pair       — one chain pair extraction (chain jobs only)
//	    └ probes   — the probe batch touching the instrument
//
// Every span carries two durations. WallNS is host wall-clock time —
// what a profiler would see. VirtualNS is simulated instrument time
// (dwell × probes, internal/device's virtual clock) — what the same
// extraction would cost on hardware. The gap between the two is the
// paper's whole argument, so both are first-class.
//
// Spans are cheap but not free (a time.Now per start/end and one
// allocation per span); they are recorded per job / pipeline / pair,
// never per probe. Probe-level information enters as attributes
// (counts) and as the probes leaf span whose virtual duration is the
// accumulated dwell.
//
// Trees are journaled through internal/store as JSON (KindSpan) keyed
// by the request hash, so `vgxreplay -spans` can dump the tree of any
// recorded extraction after the fact.

// An Attr is one key=value annotation on a span.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// AttrInt formats an integer attribute.
func AttrInt(k string, v int64) Attr { return Attr{K: k, V: fmt.Sprintf("%d", v)} }

// AttrFloat formats a float attribute with enough precision to round
// trip.
func AttrFloat(k string, v float64) Attr { return Attr{K: k, V: fmt.Sprintf("%g", v)} }

// Span is one node of a timing tree. Exported fields are the wire
// format journaled through internal/store; unexported fields drive live
// recording and are not serialized.
type Span struct {
	Name     string  `json:"name"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	WallNS   int64   `json:"wallNs"`
	VirtNS   int64   `json:"virtNs,omitempty"`
	Children []*Span `json:"children,omitempty"`

	mu    sync.Mutex
	start time.Time
}

// StartSpan begins a root span on the wall clock.
func StartSpan(name string, attrs ...Attr) *Span {
	return &Span{Name: name, Attrs: attrs, start: time.Now()}
}

// Child begins a child span. Safe for concurrent use — chain pairs
// extract in parallel and attach to the same pipeline span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	c := &Span{Name: name, Attrs: attrs, start: time.Now()}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its wall duration. Idempotent only in the
// sense that calling it twice overwrites the duration; call once.
func (s *Span) End() {
	s.WallNS = time.Since(s.start).Nanoseconds()
}

// SetVirtual records the simulated-instrument duration.
func (s *Span) SetVirtual(d time.Duration) { s.VirtNS = d.Nanoseconds() }

// SetWall overrides the measured wall duration — used when the window
// is known from probe timestamps rather than a Start/End pair.
func (s *Span) SetWall(d time.Duration) { s.WallNS = d.Nanoseconds() }

// AddAttr appends an attribute after creation.
func (s *Span) AddAttr(a Attr) {
	s.mu.Lock()
	s.Attrs = append(s.Attrs, a)
	s.mu.Unlock()
}

// Attr returns the value of the named attribute, or "".
func (s *Span) Attr(k string) string {
	for _, a := range s.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// SortChildren orders children by the given attribute value (numeric
// when possible), making journaled trees deterministic when children
// were appended concurrently.
func (s *Span) SortChildren(attrKey string) {
	s.mu.Lock()
	sort.SliceStable(s.Children, func(i, j int) bool {
		a, b := s.Children[i].Attr(attrKey), s.Children[j].Attr(attrKey)
		if len(a) != len(b) { // numeric strings: shorter sorts first
			return len(a) < len(b)
		}
		return a < b
	})
	s.mu.Unlock()
}

// spanKey carries the active span through a context so deep call sites
// (the pipeline dispatcher, the chain planner glue) can attach children
// without signature changes — and so replay paths, which never put a
// span on their context, record nothing.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Encode serializes the tree as JSON.
func (s *Span) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSpan parses a tree serialized by Encode.
func DecodeSpan(b []byte) (*Span, error) {
	var s Span
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Render writes the tree as an indented listing:
//
//	job wall=1.82ms virtual=21.8s kind=chain hash=ab12cd34
//	  pipeline wall=1.79ms virtual=21.8s method=chain
//	    pair wall=0.61ms virtual=7.3s pair=0 method=fast
//	      probes wall=0.58ms virtual=7.3s probes=728
func (s *Span) Render(w io.Writer) {
	s.render(w, 0)
}

func (s *Span) render(w io.Writer, depth int) {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	fmt.Fprintf(&b, " wall=%s", time.Duration(s.WallNS))
	if s.VirtNS != 0 {
		fmt.Fprintf(&b, " virtual=%s", time.Duration(s.VirtNS))
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.K, a.V)
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String())
	for _, c := range s.Children {
		c.render(w, depth+1)
	}
}
