package telemetry

// Telemetry overhead benchmarks — the numbers behind BENCH_telemetry.json
// (scripts/bench.sh):
//
//	BenchmarkCounterInc        one atomic add, 0 allocs
//	BenchmarkHistogramObserve  bucket binary search + atomics, 0 allocs
//	BenchmarkGaugeSet          one atomic store, 0 allocs
//	BenchmarkExposition        full registry render (scrape cost)
//
// The probe-overhead pair (BenchmarkProbeBare / BenchmarkProbeCounted)
// lives in internal/device — the instrument package sits below sched in
// the import graph, so it cannot be benchmarked from here.
//
// The acceptance gate: CounterInc must report 0 allocs/op, and the
// device-side pair must show <2% overhead.

import (
	"fmt"
	"testing"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("vgx_bench_total", "h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("vgx_bench_seconds", "h", SecondsBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("vgx_bench_level", "h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

// BenchmarkExposition renders a registry shaped like the real service's
// (a few dozen families, labelled series, histograms) — the cost of one
// /metrics scrape.
func BenchmarkExposition(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(fmt.Sprintf("vgx_bench_c%d_total", i), "h").Add(int64(i))
	}
	for _, kind := range []string{"fast", "baseline", "chain", "verify"} {
		r.Counter("vgx_bench_jobs_total", "h", L("kind", kind)).Inc()
		r.Histogram("vgx_bench_job_seconds", "h", SecondsBuckets, L("kind", kind)).Observe(0.01)
	}
	for i := 0; i < 6; i++ {
		r.Gauge(fmt.Sprintf("vgx_bench_g%d", i), "h").Set(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Expose()) == 0 {
			b.Fatal("empty exposition")
		}
	}
}
