package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden locks the exact text Expose emits for one of each
// metric kind: family ordering by name, series ordering by label
// signature, integer-style float formatting, histogram bucket cumulation
// and the implicit +Inf bucket.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("vgx_test_jobs_total", "jobs executed")
	jobs.Add(3)
	r.Counter("vgx_test_probes_total", "probes by method", L("method", "fast")).Add(7)
	r.Counter("vgx_test_probes_total", "probes by method", L("method", "baseline")).Add(2)
	g := r.Gauge("vgx_test_inflight", "jobs in flight")
	g.Set(1.5)
	r.GaugeFunc("vgx_test_saturation", "pool saturation", func() float64 { return 0.25 })
	h := r.Histogram("vgx_test_unit", "unit quantity", []float64{0.5, 1})
	h.Observe(0.3)
	h.Observe(0.7)
	h.Observe(4)

	want := strings.Join([]string{
		"# HELP vgx_test_inflight jobs in flight",
		"# TYPE vgx_test_inflight gauge",
		"vgx_test_inflight 1.5",
		"# HELP vgx_test_jobs_total jobs executed",
		"# TYPE vgx_test_jobs_total counter",
		"vgx_test_jobs_total 3",
		"# HELP vgx_test_probes_total probes by method",
		"# TYPE vgx_test_probes_total counter",
		`vgx_test_probes_total{method="baseline"} 2`,
		`vgx_test_probes_total{method="fast"} 7`,
		"# HELP vgx_test_saturation pool saturation",
		"# TYPE vgx_test_saturation gauge",
		"vgx_test_saturation 0.25",
		"# HELP vgx_test_unit unit quantity",
		"# TYPE vgx_test_unit histogram",
		`vgx_test_unit_bucket{le="0.5"} 1`,
		`vgx_test_unit_bucket{le="1"} 2`,
		`vgx_test_unit_bucket{le="+Inf"} 3`,
		"vgx_test_unit_sum 5",
		"vgx_test_unit_count 3",
		"",
	}, "\n")
	if got := r.Expose(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParseRoundTrip feeds Expose output through the in-repo parser and
// re-renders it with a drop-nothing FilterFamilies: the rebuilt text
// must be byte-identical, proving the parser sees exactly what the
// writer wrote (labels, escapes, histogram suffix attribution).
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("vgx_test_a_total", "plain").Add(41)
	r.Counter("vgx_test_b_total", "labelled", L("kind", `odd"value\with`), L("zz", "2")).Inc()
	h := r.HistogramVec("vgx_test_seconds", "latency", []float64{0.001, 0.1}, "kind")
	h.With("fast").Observe(0.05)
	h.With("slow").Observe(2)
	r.Gauge("vgx_test_level", "level").Set(-3.25)

	text := r.Expose()
	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(fams) != 4 {
		t.Fatalf("parsed %d families, want 4", len(fams))
	}
	if rt := FilterFamilies(text, func(string) bool { return false }); rt != text {
		t.Errorf("round trip mismatch:\n--- rebuilt ---\n%s--- original ---\n%s", rt, text)
	}
}

// TestParsedValues spot-checks the parser's sample decoding: label maps,
// escape handling and the histogram family attribution of _bucket/_sum/
// _count samples.
func TestParsedValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("vgx_test_x_total", "x", L("name", "a\nb\\c\"d")).Add(9)
	h := r.Histogram("vgx_test_lat_seconds", "lat", []float64{1})
	h.Observe(0.5)
	fams, err := Parse(strings.NewReader(r.Expose()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	byName := map[string]*Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	hist, ok := byName["vgx_test_lat_seconds"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", hist)
	}
	// le="1", le="+Inf", _sum, _count
	if len(hist.Samples) != 4 {
		t.Fatalf("histogram got %d samples, want 4", len(hist.Samples))
	}
	ctr := byName["vgx_test_x_total"]
	if ctr == nil || len(ctr.Samples) != 1 {
		t.Fatalf("counter family missing: %+v", ctr)
	}
	if got := ctr.Samples[0].Labels["name"]; got != "a\nb\\c\"d" {
		t.Errorf("label value round trip = %q", got)
	}
	if ctr.Samples[0].Value != 9 {
		t.Errorf("counter value = %v, want 9", ctr.Samples[0].Value)
	}
}

// TestRegistrationPanics locks the fail-loud wiring contract: bad names,
// bad label keys, duplicate series, and type or label-key conflicts all
// panic at registration time.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("unprefixed", func() { r.Counter("jobs_total", "h") })
	mustPanic("camelCase", func() { r.Counter("vgx_jobsTotal", "h") })
	mustPanic("bare prefix", func() { r.Counter("vgx", "h") })
	mustPanic("trailing underscore", func() { r.Counter("vgx_jobs_", "h") })
	mustPanic("bad label key", func() { r.Counter("vgx_ok_total", "h", L("Kind", "x")) })

	r.Counter("vgx_dup_total", "h")
	mustPanic("duplicate series", func() { r.Counter("vgx_dup_total", "h") })
	mustPanic("type conflict", func() { r.Gauge("vgx_dup_total", "h") })

	r.Counter("vgx_keys_total", "h", L("kind", "a"))
	r.Counter("vgx_keys_total", "h", L("kind", "b")) // same keys: fine
	mustPanic("label-key conflict", func() { r.Counter("vgx_keys_total", "h", L("method", "a")) })
}

// TestFilterFamilies checks the determinism-test helper drops whole
// families (histogram suffixes included) and keeps the rest verbatim.
func TestFilterFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("vgx_keep_total", "kept").Add(5)
	r.Histogram("vgx_drop_seconds", "dropped", SecondsBuckets).Observe(0.01)
	got := FilterFamilies(r.Expose(), func(name string) bool {
		return strings.HasSuffix(name, "_seconds")
	})
	if strings.Contains(got, "vgx_drop_seconds") {
		t.Errorf("dropped family leaked:\n%s", got)
	}
	if !strings.Contains(got, "vgx_keep_total 5") {
		t.Errorf("kept family missing:\n%s", got)
	}
}

// TestCounterVec checks lazy series creation and Snapshot.
func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("vgx_vec_total", "h", "kind")
	v.With("a").Add(2)
	v.With("b").Inc()
	v.With("a").Inc() // same series
	snap := v.Snapshot()
	if snap["a"] != 3 || snap["b"] != 1 || len(snap) != 2 {
		t.Errorf("snapshot = %v, want a:3 b:1", snap)
	}
}

// TestGaugeAdd exercises the CAS add loop.
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("vgx_g", "h")
	g.Set(1)
	g.Add(0.5)
	g.Add(-2)
	if got := g.Value(); got != -0.5 {
		t.Errorf("gauge = %v, want -0.5", got)
	}
}

// TestHistogramStats checks Count/Sum and out-of-range routing to +Inf.
func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vgx_h_probes", "h", ProbeBuckets)
	for _, v := range []float64{5, 100, 1e6} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 5+100+1e6 {
		t.Errorf("sum = %v", h.Sum())
	}
}

// TestHandler checks the /metrics handler body and content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("vgx_hits_total", "h").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "vgx_hits_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestHotPathAllocs is the alloc regression gate: every operation that
// runs on the probe hot path must be allocation-free.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vgx_alloc_total", "h")
	g := r.Gauge("vgx_alloc_level", "h")
	h := r.Histogram("vgx_alloc_seconds", "h", SecondsBuckets)
	held := r.CounterVec("vgx_alloc_vec_total", "h", "kind").With("fast")

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1.25) }},
		{"Gauge.Add", func() { g.Add(0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.003) }},
		{"held vec counter Inc", func() { held.Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
