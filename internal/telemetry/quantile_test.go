package telemetry

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})

	if q := h.Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty histogram Quantile(0.5) = %v, want NaN", q)
	}

	// 100 observations uniform in (0, 4]: 25 per bucket of width 1, 2, 4.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	// Bucket counts: (0,1]=25, (1,2]=25, (2,4]=50, (4,8]=0.
	cases := []struct{ p, want float64 }{
		{0.25, 1.0}, // exactly at the first bound
		{0.5, 2.0},  // exactly at the second bound
		{0.75, 3.0}, // halfway through the (2,4] bucket
		{1.0, 4.0},
		{0.125, 0.5}, // interpolates down to zero in the first bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}

	// Out-of-range p clamps; NaN stays NaN.
	if got := h.Quantile(-1); math.Abs(got-0) > 1e-9 {
		t.Errorf("Quantile(-1) = %v, want 0", got)
	}
	if got := h.Quantile(2); math.Abs(got-4) > 1e-9 {
		t.Errorf("Quantile(2) = %v, want 4", got)
	}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
}

func TestHistogramQuantileInfBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100) // lands in +Inf
	// No finite upper bound to interpolate toward: report the highest
	// finite bound as a lower-bound estimate.
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) with all mass in +Inf = %v, want 2", got)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{10, 20}
	// 4 observations <= 10, 4 more in (10,20], 2 beyond.
	cum := []float64{4, 8, 10}
	if got, want := QuantileFromBuckets(bounds, cum, 0.5), 12.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("QuantileFromBuckets(0.5) = %v, want %v", got, want)
	}
	if got := QuantileFromBuckets(bounds, []float64{1}, 0.5); !math.IsNaN(got) {
		t.Errorf("mismatched cum length = %v, want NaN", got)
	}
	if got := QuantileFromBuckets(bounds, []float64{0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Errorf("zero-count buckets = %v, want NaN", got)
	}
}

func TestSnapshotMatchesExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("vgx_test_total", "c")
	g := reg.Gauge("vgx_test_gauge", "g", L("shard", "a"))
	h := reg.Histogram("vgx_test_seconds", "h", []float64{1, 2})
	reg.GaugeFunc("vgx_test_fn", "f", func() float64 { return 7 })

	c.Add(3)
	g.Set(2.5)
	h.Observe(0.5)
	h.Observe(1.5)

	points := reg.Snapshot()
	byKey := map[string]float64{}
	for _, p := range points {
		byKey[p.Key()] = p.Value
	}
	want := map[string]float64{
		"vgx_test_total":                     3,
		`vgx_test_gauge{shard="a"}`:          2.5,
		"vgx_test_fn":                        7,
		`vgx_test_seconds_bucket{le="1"}`:    1,
		`vgx_test_seconds_bucket{le="2"}`:    2,
		`vgx_test_seconds_bucket{le="+Inf"}`: 2,
		"vgx_test_seconds_sum":               2,
		"vgx_test_seconds_count":             2,
	}
	for k, v := range want {
		got, ok := byKey[k]
		if !ok || got != v {
			t.Errorf("snapshot[%q] = %v (present %v), want %v", k, got, ok, v)
		}
	}
	if len(points) != len(want) {
		t.Errorf("snapshot has %d points, want %d: %+v", len(points), len(want), points)
	}

	// Deterministic order: two snapshots of the same registry are equal.
	again := reg.Snapshot()
	for i := range points {
		if points[i] != again[i] {
			t.Fatalf("snapshot order unstable at %d: %+v vs %+v", i, points[i], again[i])
		}
	}
}
