package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is a deliberately tiny reader for the text format Expose
// emits. It exists for two consumers: the exposition golden tests (round
// trip what we wrote) and, later, a scatter-gather front door that needs
// to merge shard scrapes without pulling in a Prometheus client
// dependency. It handles exactly the subset this package produces:
// one HELP and one TYPE line per family, samples with optional labels,
// no timestamps, no exemplars.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string            // full sample name, e.g. vgx_sched_run_seconds_bucket
	Labels map[string]string // nil when unlabelled
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Parse reads Prometheus text format as produced by Expose. Families
// are returned in input order; unknown directives or malformed lines
// are errors (this is a strict parser for our own output, not a general
// scrape parser).
func Parse(r io.Reader) ([]*Family, error) {
	var (
		out  []*Family
		byNm = map[string]*Family{}
		cur  *Family
	)
	family := func(name string) *Family {
		if f, ok := byNm[name]; ok {
			return f
		}
		f := &Family{Name: name}
		byNm[name] = f
		out = append(out, f)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			cur = family(name)
			cur.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: TYPE without a type", ln)
			}
			cur = family(name)
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("telemetry: line %d: unknown directive %q", ln, line)
		}
		s, base, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", ln, err)
		}
		// _bucket/_sum/_count samples belong to the histogram family.
		f := cur
		if f == nil || !strings.HasPrefix(s.Name, f.Name) {
			f = family(base)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample splits `name{k="v",...} value` and returns the sample plus
// the family base name (histogram suffixes stripped).
func parseSample(line string) (Sample, string, error) {
	var s Sample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, "", fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			return s, "", fmt.Errorf("unterminated labels in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, "", err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	valStr := strings.TrimSpace(rest)
	v, err := parseValue(valStr)
	if err != nil {
		return s, "", fmt.Errorf("bad value %q: %w", valStr, err)
	}
	s.Value = v
	base := s.Name
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base = strings.TrimSuffix(base, suf)
	}
	return s, base, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label segment %q", body)
		}
		key := body[:eq]
		// Scan the quoted value honouring backslash escapes.
		i := eq + 2
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(body[i])
			i++
		}
		if i >= len(body) {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		labels[key] = val.String()
		body = body[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// FilterFamilies returns the exposition text with every family whose
// name matches drop removed. The determinism property test uses it to
// strip wall-clock families (anything ending in _seconds) before
// comparing worker counts byte for byte.
func FilterFamilies(text string, drop func(name string) bool) string {
	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		return text
	}
	kept := fams[:0]
	for _, f := range fams {
		if !drop(f.Name) {
			kept = append(kept, f)
		}
	}
	return RenderFamilies(kept)
}
