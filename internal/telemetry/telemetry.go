// Package telemetry is the dependency-free observability core of the
// repository: a metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus text-format exposition, and a span tracer
// (span.go) that records job→pipeline→pair→probe-batch timing trees on
// both the wall clock and the simulated instrument clock.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Counter.Inc / Counter.Add / Gauge.Set /
//     Histogram.Observe are single atomic operations (plus a bucket
//     binary search for histograms) and perform zero allocations, so
//     they are safe on the probe hot path (~100 ns per probe).
//  2. Determinism. Exposition orders families by name and series by
//     label signature, and label signatures themselves are built from
//     key-sorted labels, so two registries fed the same events render
//     byte-identical text. This is what the worker-count property test
//     in internal/service asserts, and what a future scatter-gather
//     front door will merge.
//  3. Fail-loud registration. Registering a duplicate name+labels, an
//     un-prefixed or non-snake_case name, or the same family under two
//     types panics at wiring time. The metric-name lint in CI is simply
//     "the full stack wires up without panicking" plus a walk over the
//     registered names.
//
// Metric names must match ^vgx(_[a-z0-9]+)+$ — `vgx_`-prefixed
// snake_case — so every family from this codebase is recognisable in a
// shared Prometheus.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the registration lint: vgx_-prefixed snake_case.
var (
	nameRE     = regexp.MustCompile(`^vgx(_[a-z0-9]+)+$`)
	labelKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// A Label is one key="value" pair attached to a metric series. Keys must
// be snake_case identifiers; values are escaped at exposition time.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric is the exposition contract each concrete metric satisfies.
type metric interface {
	// expose appends one or more text-format lines for the series.
	expose(b *strings.Builder, name, sig string)
	// scrape emits the series' current samples as values: suffix is the
	// sample-name suffix ("" or _bucket/_sum/_count), extra an extra
	// label pair (le=... for buckets). The tsdb scraper consumes this —
	// same samples as expose, without rendering text.
	scrape(emit func(suffix, extra string, v float64))
}

// family groups every series registered under one metric name.
type family struct {
	name string
	help string
	typ  string   // "counter" | "gauge" | "histogram"
	keys []string // sorted label keys, identical across the family

	series map[string]metric // label signature -> metric
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature renders key-sorted labels as `k1="v1",k2="v2"` (keys are
// pre-validated; values escaped). Empty for an unlabelled series.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func labelKeys(labels []Label) []string {
	keys := make([]string, len(labels))
	for i, l := range labels {
		keys[i] = l.Key
	}
	sort.Strings(keys)
	return keys
}

// register adds a series, creating its family on first use. It panics
// on any inconsistency: bad name, duplicate series, type or label-key
// mismatch with the existing family.
func (r *Registry) register(name, help, typ string, labels []Label, m metric) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q must be vgx_-prefixed snake_case", name))
	}
	for _, l := range labels {
		if !labelKeyRE.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: label key %q on %q must be snake_case", l.Key, name))
		}
	}
	keys := labelKeys(labels)
	sig := signature(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, keys: keys, series: make(map[string]metric)}
		r.families[name] = f
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
		}
		if strings.Join(f.keys, ",") != strings.Join(keys, ",") {
			panic(fmt.Sprintf("telemetry: metric %q label keys %v conflict with %v", name, keys, f.keys))
		}
	}
	if _, dup := f.series[sig]; dup {
		panic(fmt.Sprintf("telemetry: duplicate registration of %s{%s}", name, sig))
	}
	f.series[sig] = m
}

// Names returns the registered family names, sorted. Used by the
// metric-name lint and the docs catalogue test.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing integer metric. All methods are
// lock-free and allocation-free.
//
// One deliberate deviation from Prometheus purity: the service's cache
// "coalesced" series is registered as a gauge, not a counter, because a
// coalesced waiter that abandons the flight is un-counted (see
// internal/service/cache.go). Counters created here never decrement.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. n must be non-negative for counters; the cache's
// gauge-typed uncount path is the only caller that passes a negative.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(b *strings.Builder, name, sig string) {
	writeSample(b, name, sig, float64(c.v.Load()))
}

func (c *Counter) scrape(emit func(suffix, extra string, v float64)) {
	emit("", "", float64(c.v.Load()))
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, c)
	return c
}

// IntGauge registers a Counter-backed series exposed with gauge type:
// an integer value that may go down. Used for the rare logically
// decrementable counts (cache coalesce uncounting).
func (r *Registry) IntGauge(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, "gauge", labels, c)
	return c
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(b *strings.Builder, name, sig string) {
	writeSample(b, name, sig, g.Value())
}

func (g *Gauge) scrape(emit func(suffix, extra string, v float64)) {
	emit("", "", g.Value())
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, g)
	return g
}

// funcGauge evaluates fn at exposition time. fn must not call back into
// the registry (the registry mutex is held during exposition).
type funcGauge struct {
	fn func() float64
}

func (f funcGauge) expose(b *strings.Builder, name, sig string) {
	writeSample(b, name, sig, f.fn())
}

func (f funcGauge) scrape(emit func(suffix, extra string, v float64)) {
	emit("", "", f.fn())
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe to call concurrently and must not touch the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, funcGauge{fn: fn})
}

// ---------------------------------------------------------------------
// Histogram

// Default bucket layouts. SecondsBuckets spans 100 µs .. 10 s (job and
// journal-append latencies); ProbeBuckets spans typical probe counts
// per extraction; UnitBuckets covers [0,1] quantities such as surrogate
// confidence.
var (
	SecondsBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	ProbeBuckets   = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
	UnitBuckets    = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}
)

// Histogram is a fixed-bucket cumulative histogram. Observe is
// lock-free: a binary search over the (immutable) upper bounds, one
// atomic bucket increment, one atomic count increment and a CAS float
// add for the sum. Zero allocations.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the p-quantile of the observed distribution by
// linear interpolation within the bucket the quantile falls in — the
// same estimate Prometheus's histogram_quantile computes server-side,
// available in-process for alert rules and dashboard columns. Edge
// behaviour: NaN when the histogram is empty or p is NaN, the lowest
// bound's bucket interpolates down to zero, and a quantile landing in
// the +Inf bucket returns the highest finite bound (the estimate is a
// lower bound there, not an extrapolation). p is clamped to [0, 1].
func (h *Histogram) Quantile(p float64) float64 {
	cum := make([]float64, len(h.bounds)+1)
	var total uint64
	for i := range h.bounds {
		total += h.counts[i].Load()
		cum[i] = float64(total)
	}
	total += h.inf.Load()
	cum[len(h.bounds)] = float64(total)
	return QuantileFromBuckets(h.bounds, cum, p)
}

// QuantileFromBuckets estimates the p-quantile from a cumulative bucket
// snapshot: bounds are the finite upper bounds (sorted ascending) and
// cum the cumulative counts per bucket with the +Inf bucket appended
// (len(cum) == len(bounds)+1). Counts may be fractional — windowed
// rates from the tsdb divide through time. Shared by Histogram.Quantile
// and the tsdb quantile query so both report identical estimates.
func QuantileFromBuckets(bounds []float64, cum []float64, p float64) float64 {
	if len(cum) != len(bounds)+1 || math.IsNaN(p) {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if !(total > 0) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * total
	// First bucket whose cumulative count reaches the rank.
	i := sort.SearchFloat64s(cum, rank)
	if i >= len(bounds) {
		// The +Inf bucket: no upper bound to interpolate toward.
		if len(bounds) == 0 {
			return math.NaN()
		}
		return bounds[len(bounds)-1]
	}
	lo, hi := 0.0, bounds[i]
	prev := 0.0
	if i > 0 {
		lo = bounds[i-1]
		prev = cum[i-1]
	}
	inBucket := cum[i] - prev
	if !(inBucket > 0) {
		return hi
	}
	return lo + (hi-lo)*(rank-prev)/inBucket
}

func (h *Histogram) expose(b *strings.Builder, name, sig string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := "le=\"" + formatValue(bound) + "\""
		writeSample(b, name+"_bucket", joinSig(sig, le), float64(cum))
	}
	cum += h.inf.Load()
	writeSample(b, name+"_bucket", joinSig(sig, `le="+Inf"`), float64(cum))
	writeSample(b, name+"_sum", sig, h.Sum())
	writeSample(b, name+"_count", sig, float64(h.count.Load()))
}

func (h *Histogram) scrape(emit func(suffix, extra string, v float64)) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		emit("_bucket", "le=\""+formatValue(bound)+"\"", float64(cum))
	}
	cum += h.inf.Load()
	emit("_bucket", `le="+Inf"`, float64(cum))
	emit("_sum", "", h.Sum())
	emit("_count", "", float64(h.count.Load()))
}

// Histogram registers and returns a histogram series with the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", labels, h)
	return h
}

// ---------------------------------------------------------------------
// Vecs: lazily-populated single-label families

// CounterVec manages counter series of one family distinguished by a
// single label (e.g. vgx_service_probes_total{method=...}). With is the
// only allocation point; hold the returned *Counter for hot paths.
type CounterVec struct {
	r    *Registry
	name string
	help string
	key  string

	mu sync.Mutex
	m  map[string]*Counter
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{r: r, name: name, help: help, key: labelKey, m: make(map[string]*Counter)}
}

// With returns the counter for the given label value, registering it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.m[value]; ok {
		return c
	}
	c := v.r.Counter(v.name, v.help, Label{Key: v.key, Value: value})
	v.m[value] = c
	return c
}

// Snapshot returns label value -> count for every series seen so far.
func (v *CounterVec) Snapshot() map[string]int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}

// HistogramVec manages histogram series of one family distinguished by
// a single label (e.g. vgx_service_job_seconds{kind=...}).
type HistogramVec struct {
	r       *Registry
	name    string
	help    string
	key     string
	buckets []float64

	mu sync.Mutex
	m  map[string]*Histogram
}

// HistogramVec registers a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKey string) *HistogramVec {
	return &HistogramVec{r: r, name: name, help: help, key: labelKey, buckets: buckets, m: make(map[string]*Histogram)}
}

// With returns the histogram for the given label value, registering it
// on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.m[value]; ok {
		return h
	}
	h := v.r.Histogram(v.name, v.help, v.buckets, Label{Key: v.key, Value: value})
	v.m[value] = h
	return h
}

// ---------------------------------------------------------------------
// Exposition helpers (shared with expose.go)

func joinSig(sig, extra string) string {
	if sig == "" {
		return extra
	}
	return sig + "," + extra
}

// formatValue renders floats the way Prometheus clients do: integers
// without a decimal point, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(b *strings.Builder, name, sig string, v float64) {
	b.WriteString(name)
	if sig != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}
