package telemetry

import (
	"strings"
	"testing"
)

// Parse → RenderFamilies round-trips a live registry's exposition byte
// for byte: same family order, same sorted series, same value
// formatting. This is the property the shard router's merged /metrics
// page leans on.
func TestRenderRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vgx_test_total", "A counter.").Add(3)
	reg.Gauge("vgx_test_gauge", "A labelled gauge.", L("kind", "fast")).Set(1.5)
	reg.Gauge("vgx_test_gauge", "A labelled gauge.", L("kind", "baseline")).Set(-2)
	reg.Histogram("vgx_test_seconds", "A histogram.", SecondsBuckets).Observe(0.004)

	text := reg.Expose()
	fams, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderFamilies(fams); got != text {
		t.Fatalf("round trip diverged:\n--- expose ---\n%s--- render ---\n%s", text, got)
	}
}

// Stamping an extra label on every sample before rendering — the router's
// shard label — yields a page that parses back with the label present on
// each sample and families intact.
func TestRenderWithInjectedLabel(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vgx_test_total", "A counter.").Add(7)
	reg.Gauge("vgx_test_gauge", "A labelled gauge.", L("kind", "fast")).Set(2)

	fams, err := Parse(strings.NewReader(reg.Expose()))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fams {
		for i := range f.Samples {
			if f.Samples[i].Labels == nil {
				f.Samples[i].Labels = map[string]string{}
			}
			f.Samples[i].Labels["shard"] = "3"
		}
	}
	back, err := Parse(strings.NewReader(RenderFamilies(fams)))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(fams) {
		t.Fatalf("family count changed: %d -> %d", len(fams), len(back))
	}
	for _, f := range back {
		for _, s := range f.Samples {
			if s.Labels["shard"] != "3" {
				t.Fatalf("sample %s lost the shard label: %v", s.Name, s.Labels)
			}
		}
	}
}
