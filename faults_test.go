package fastvg

// Failure-injection tests: device instability (charge jumps), strong
// telegraph noise and sensor drift injected mid-measurement. The pipelines
// must either still produce accurate matrices (mild faults) or fail with a
// sentinel error (severe faults) — never panic and never silently return a
// non-physical matrix.

import (
	"errors"
	"testing"
	"time"
)

func TestExtractionSurvivesMildChargeJumps(t *testing.T) {
	// One-quarter-step jumps every ~20 s of virtual time: a fast extraction
	// (~50 s of dwell) sees a couple of them.
	ok := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{
			Noise: NoiseParams{WhiteSigma: 0.01, JumpAmp: 0.05, JumpInterval: 20},
			Seed:  uint64(500 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Extract(inst, inst.Window(), Options{})
		if err != nil {
			continue
		}
		if angleErrDeg(res.SteepSlope, truth.SteepSlope) <= 3.5 &&
			angleErrDeg(res.ShallowSlope, truth.ShallowSlope) <= 3.5 {
			ok++
		}
	}
	if ok < trials-1 {
		t.Errorf("survived only %d/%d mild charge-jump runs", ok, trials)
	}
}

func TestExtractionGracefulUnderSevereFaults(t *testing.T) {
	// Full-step jumps every 3 s plus strong telegraph noise: extraction may
	// fail, but only with a sentinel error, and any returned matrix must be
	// physical.
	for i := 0; i < 5; i++ {
		inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{
			Noise: NoiseParams{
				WhiteSigma: 0.05,
				RTNAmp:     0.3, RTNRate: 0.5,
				JumpAmp: 0.25, JumpInterval: 3,
			},
			Seed: uint64(600 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Extract(inst, inst.Window(), Options{})
		if err != nil {
			if !errors.Is(err, ErrAnchors) && !errors.Is(err, ErrFit) && !errors.Is(err, ErrNonPhysical) {
				t.Errorf("seed %d: non-sentinel error %v", 600+i, err)
			}
			continue
		}
		if !(res.SteepSlope < -1) || !(res.ShallowSlope > -1 && res.ShallowSlope < 0) {
			t.Errorf("seed %d: non-physical matrix returned without error: steep=%v shallow=%v",
				600+i, res.SteepSlope, res.ShallowSlope)
		}
	}
}

func TestBaselineGracefulUnderSevereFaults(t *testing.T) {
	for i := 0; i < 3; i++ {
		inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{
			Pixels: 64,
			Noise: NoiseParams{
				WhiteSigma: 0.08,
				RTNAmp:     0.35, RTNRate: 0.3,
			},
			Seed: uint64(700 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExtractBaseline(inst, inst.Window(), BaselineOptions{})
		if err != nil {
			if !errors.Is(err, ErrNoLine) && !errors.Is(err, ErrBaselineNonPhysical) {
				t.Errorf("seed %d: non-sentinel baseline error %v", 700+i, err)
			}
			continue
		}
		if !(res.SteepSlope < -1) || !(res.ShallowSlope > -1 && res.ShallowSlope < 0) {
			t.Errorf("seed %d: baseline returned non-physical matrix", 700+i)
		}
	}
}

func TestDriftDuringLongAcquisition(t *testing.T) {
	// Slow sensor drift over the ~8 min a full 100×100 raster takes: the
	// baseline's acquisition integrates the drift as a background ramp,
	// which Canny's derivative stage removes — it should still succeed.
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{
		Noise: NoiseParams{WhiteSigma: 0.01, DriftLinear: 0.0002}, // +0.1 over 500 s
		Seed:  42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractBaseline(inst, inst.Window(), BaselineOptions{})
	if err != nil {
		t.Fatalf("baseline under drift: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("drifted baseline steep off by %.2f°", e)
	}
	if res.ExperimentTime < 8*time.Minute {
		t.Errorf("full raster virtual time = %v, want > 8 min", res.ExperimentTime)
	}
}

func TestFastExtractionUnderDrift(t *testing.T) {
	// The fast extraction finishes in ~1 min of dwell, so the same drift
	// moves the baseline far less during its measurement.
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{
		Noise: NoiseParams{WhiteSigma: 0.01, DriftLinear: 0.0002},
		Seed:  42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(inst, inst.Window(), Options{})
	if err != nil {
		t.Fatalf("fast extraction under drift: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("drifted fast steep off by %.2f°", e)
	}
}
