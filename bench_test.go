package fastvg

// This file is the benchmark harness for every table and figure in the
// paper's evaluation (Section 5), plus the ablations called out in
// DESIGN.md. Each benchmark reports, beyond ns/op:
//
//	probes/op     distinct voltage configurations measured
//	exp_s/op      experiment (dwell) time on the virtual clock, seconds
//	speedup       baseline experiment time / fast experiment time
//
// Run with: go test -bench=. -benchmem
//
// Table 1 rows are BenchmarkTable1/csd-NN/{fast,baseline}; figures are
// BenchmarkFigure2..7 (Figure 1 is a device micrograph; its schematic
// substitute is pure text output and has no benchmark).

import (
	"fmt"
	"testing"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/evalx"
	"github.com/fastvg/fastvg/internal/imaging"
	"github.com/fastvg/fastvg/internal/postproc"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/sweep"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// benchFast runs the fast extraction on a pre-generated dataset instrument
// and reports the paper's metrics.
func benchFast(b *testing.B, bm *qflow.Benchmark) {
	b.Helper()
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	var probes, expNanos float64
	ok := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := newDatasetInstrument(data, bm)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Extract(csd.PixelSource{Src: inst, Win: bm.Window}, bm.Window, core.Config{})
		st := inst.Stats()
		probes += float64(st.UniqueProbes)
		expNanos += float64(st.Virtual.Nanoseconds())
		if err == nil {
			if good, _, _ := evalx.CheckSlopes(res.SteepSlope, res.ShallowSlope, bm.Truth, evalx.DefaultAngleTolDeg); good {
				ok++
			}
		}
	}
	b.ReportMetric(probes/float64(b.N), "probes/op")
	b.ReportMetric(expNanos/float64(b.N)/1e9, "exp_s/op")
	b.ReportMetric(float64(ok)/float64(b.N), "success")
}

func benchBaseline(b *testing.B, bm *qflow.Benchmark) {
	b.Helper()
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	var probes, expNanos float64
	ok := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := newDatasetInstrument(data, bm)
		if err != nil {
			b.Fatal(err)
		}
		res, err := baseline.Extract(inst, bm.Window, baseline.Config{})
		st := inst.Stats()
		probes += float64(st.UniqueProbes)
		expNanos += float64(st.Virtual.Nanoseconds())
		if err == nil {
			if good, _, _ := evalx.CheckSlopes(res.SteepSlope, res.ShallowSlope, bm.Truth, evalx.DefaultAngleTolDeg); good {
				ok++
			}
		}
	}
	b.ReportMetric(probes/float64(b.N), "probes/op")
	b.ReportMetric(expNanos/float64(b.N)/1e9, "exp_s/op")
	b.ReportMetric(float64(ok)/float64(b.N), "success")
}

// BenchmarkTable1 reproduces every row of the paper's Table 1: both methods
// on all 12 benchmarks.
func BenchmarkTable1(b *testing.B) {
	suite := qflow.MustSuite()
	for _, bm := range suite {
		bm := bm
		b.Run(fmt.Sprintf("%s/fast", bm.Name), func(b *testing.B) { benchFast(b, bm) })
		b.Run(fmt.Sprintf("%s/baseline", bm.Name), func(b *testing.B) { benchBaseline(b, bm) })
	}
}

// BenchmarkFigure2 measures CSD synthesis (the acquisition behind the
// example diagram of Figure 2).
func BenchmarkFigure2(b *testing.B) {
	bm, err := evalx.ByIndex(6)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := bm.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 measures the virtual-gate warp of an extracted matrix
// (Figure 3's right panel).
func BenchmarkFigure3(b *testing.B) {
	bm, err := evalx.ByIndex(6)
	if err != nil {
		b.Fatal(err)
	}
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	m, err := virtualgate.FromSlopes(bm.Truth.SteepSlope, bm.Truth.ShallowSlope)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := virtualgate.Warp(data, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 measures the anchor preprocessing that defines the
// critical region (Figure 4).
func BenchmarkFigure4(b *testing.B) {
	bm, err := evalx.ByIndex(6)
	if err != nil {
		b.Fatal(err)
	}
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	src := csd.GridSource{G: data}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anchorsFind(src, data.W, data.H); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 measures the two shrinking-triangle sweeps (Figure 5).
func BenchmarkFigure5(b *testing.B) {
	bm, err := evalx.ByIndex(6)
	if err != nil {
		b.Fatal(err)
	}
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	src := csd.GridSource{G: data}
	anc, err := anchorsFind(src, data.W, data.H)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := sweep.Sweeps(src, anc.Left, anc.Bottom); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 measures the post-processing filter on realistic sweep
// output (Figure 6).
func BenchmarkFigure6(b *testing.B) {
	bm, err := evalx.ByIndex(6)
	if err != nil {
		b.Fatal(err)
	}
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	src := csd.GridSource{G: data}
	anc, err := anchorsFind(src, data.W, data.H)
	if err != nil {
		b.Fatal(err)
	}
	points, _, _, err := sweep.Sweeps(src, anc.Left, anc.Bottom)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postproc.Filter(points)
	}
}

// BenchmarkFigure7 measures probe-map extraction for benchmarks 6 and 10
// (Figure 7's data).
func BenchmarkFigure7(b *testing.B) {
	for _, idx := range []int{6, 10} {
		idx := idx
		b.Run(fmt.Sprintf("csd-%02d", idx), func(b *testing.B) {
			bm, err := evalx.ByIndex(idx)
			if err != nil {
				b.Fatal(err)
			}
			data, err := bm.Generate()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := newDatasetInstrument(data, bm)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Extract(csd.PixelSource{Src: inst, Win: bm.Window}, bm.Window, core.Config{}); err != nil {
					b.Fatal(err)
				}
				if len(inst.ProbeMap()) == 0 {
					b.Fatal("empty probe map")
				}
			}
		})
	}
}

// BenchmarkAblation quantifies each design choice of Section 4 on benchmark
// CSD 6: triangle shrinking, the column sweep, the post-processing filter,
// and the baseline's TLS refinement.
func BenchmarkAblation(b *testing.B) {
	bm, err := evalx.ByIndex(6)
	if err != nil {
		b.Fatal(err)
	}
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"paper", core.Config{}},
		{"no-shrink", core.Config{NoShrink: true}},
		{"row-only", core.Config{RowSweepOnly: true}},
		{"no-filter", core.Config{DisableFilter: true}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var probes float64
			ok := 0
			for i := 0; i < b.N; i++ {
				inst, err := newDatasetInstrument(data, bm)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Extract(csd.PixelSource{Src: inst, Win: bm.Window}, bm.Window, tc.cfg)
				probes += float64(inst.Stats().UniqueProbes)
				if err == nil {
					if good, _, _ := evalx.CheckSlopes(res.SteepSlope, res.ShallowSlope, bm.Truth, evalx.DefaultAngleTolDeg); good {
						ok++
					}
				}
			}
			b.ReportMetric(probes/float64(b.N), "probes/op")
			b.ReportMetric(float64(ok)/float64(b.N), "success")
		})
	}
	b.Run("baseline-no-refine", func(b *testing.B) {
		ok := 0
		for i := 0; i < b.N; i++ {
			res, err := baseline.ExtractFromGrid(data, bm.Window, baseline.Config{NoRefine: true})
			if err == nil {
				if good, _, _ := evalx.CheckSlopes(res.SteepSlope, res.ShallowSlope, bm.Truth, evalx.DefaultAngleTolDeg); good {
					ok++
				}
			}
		}
		b.ReportMetric(float64(ok)/float64(b.N), "success")
	})
}

// BenchmarkScalingGridSize sweeps the window resolution, showing the fast
// method's probe count growing ~linearly with the window side while the
// baseline's grows quadratically (the source of the paper's size-dependent
// speedups).
func BenchmarkScalingGridSize(b *testing.B) {
	for _, n := range []int{63, 100, 200, 400} {
		n := n
		b.Run(fmt.Sprintf("fast-%d", n), func(b *testing.B) {
			var probes float64
			for i := 0; i < b.N; i++ {
				inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{Pixels: n, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Extract(inst, inst.Window(), Options{}); err != nil {
					b.Fatal(err)
				}
				probes += float64(inst.Stats().UniqueProbes)
			}
			b.ReportMetric(probes/float64(b.N), "probes/op")
			b.ReportMetric(probes/float64(b.N)/float64(n*n)*100, "probe_pct")
		})
	}
}

// BenchmarkChainExtraction measures the n-dot sequential pairwise procedure
// (Section 2.3) as the array grows.
func BenchmarkChainExtraction(b *testing.B) {
	for _, dots := range []int{2, 4, 8} {
		dots := dots
		b.Run(fmt.Sprintf("dots-%d", dots), func(b *testing.B) {
			var probes float64
			for i := 0; i < b.N; i++ {
				sim, err := NewChainSim(ChainSimOptions{Dots: dots, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				windows := make([]Window, dots-1)
				for j := range windows {
					windows[j] = sim.RecommendedWindow(100)
				}
				if _, _, err := ExtractChain(sim, windows, make([]float64, dots), Options{}); err != nil {
					b.Fatal(err)
				}
				probes += float64(sim.Inst.Stats().UniqueProbes)
			}
			b.ReportMetric(probes/float64(b.N), "probes/op")
		})
	}
}

// BenchmarkCannyHough isolates the baseline's image-processing cost (its
// compute is negligible next to acquisition dwell, as the paper notes).
func BenchmarkCannyHough(b *testing.B) {
	bm, err := evalx.ByIndex(12) // 200×200
	if err != nil {
		b.Fatal(err)
	}
	data, err := bm.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edges := imaging.Canny(data.Normalized(), imaging.DefaultCannyConfig())
		acc := imaging.Hough(edges, imaging.DefaultHoughConfig())
		acc.Peaks(8, 50, 8, 10)
	}
}

// BenchmarkExtensions measures the repository's additions beyond the paper:
// the ray-based comparison method, the adaptive coarse-to-fine pass and the
// automatic window finder, each on a clean simulated device.
func BenchmarkExtensions(b *testing.B) {
	b.Run("rays", func(b *testing.B) {
		var probes float64
		for i := 0; i < b.N; i++ {
			inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ExtractRays(inst, inst.Window(), RayOptions{}); err != nil {
				b.Fatal(err)
			}
			probes += float64(inst.Stats().UniqueProbes)
		}
		b.ReportMetric(probes/float64(b.N), "probes/op")
	})
	b.Run("adaptive-200px", func(b *testing.B) {
		var probes float64
		for i := 0; i < b.N; i++ {
			inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{Pixels: 200, Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ExtractAdaptive(inst, inst.Window(), AdaptiveOptions{}); err != nil {
				b.Fatal(err)
			}
			probes += float64(inst.Stats().UniqueProbes)
		}
		b.ReportMetric(probes/float64(b.N), "probes/op")
	})
	b.Run("plain-200px", func(b *testing.B) {
		var probes float64
		for i := 0; i < b.N; i++ {
			inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{Pixels: 200, Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Extract(inst, inst.Window(), Options{}); err != nil {
				b.Fatal(err)
			}
			probes += float64(inst.Stats().UniqueProbes)
		}
		b.ReportMetric(probes/float64(b.N), "probes/op")
	})
	b.Run("find-window", func(b *testing.B) {
		var probes float64
		for i := 0; i < b.N; i++ {
			inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{
				Pixels: 240, SpanMV: 120, CrossXFrac: 0.25, CrossYFrac: 0.23, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			ws, err := FindWindow(inst, 0, 120, 0, 120, 100)
			if err != nil {
				b.Fatal(err)
			}
			probes += float64(ws.Probes)
		}
		b.ReportMetric(probes/float64(b.N), "probes/op")
	})
}
