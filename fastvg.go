package fastvg

import (
	"time"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/imaging"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Window maps a pixel grid onto a rectangle of (V1, V2) gate-voltage space;
// the pixel pitch is the probing granularity δ.
type Window = csd.Window

// NewWindow returns an n×n window covering [v1Min, v1Min+span] ×
// [v2Min, v2Min+span] millivolts.
func NewWindow(v1Min, v2Min, span float64, n int) Window {
	return csd.NewSquareWindow(v1Min, v2Min, span, n)
}

// Instrument measures charge-sensor current at a two-gate voltage
// configuration: the paper's getCurrent (set voltages, dwell, read).
type Instrument = device.Instrument

// Stats accounts for an instrument's experimental cost.
type Stats = device.Stats

// Matrix2 is a 2×2 virtualization matrix with unit diagonal.
type Matrix2 = virtualgate.Mat2

// Point is an integer pixel coordinate in a scan window.
type Point = grid.Point

// Grid is a dense float64 raster (an acquired CSD, a probe mask, ...).
type Grid = grid.Grid

// Sentinel errors re-exported from the pipelines.
var (
	ErrAnchors             = core.ErrAnchors
	ErrFit                 = core.ErrFit
	ErrNonPhysical         = core.ErrNonPhysical
	ErrNoLine              = baseline.ErrNoLine
	ErrBaselineNonPhysical = baseline.ErrNonPhysical
)

// Options tunes Extract; the zero value reproduces the paper's method.
type Options struct {
	// DiagonalProbes is the number of anchor-preprocessing probes along the
	// window diagonal (default 10, the paper's value).
	DiagonalProbes int
	// GaussSigmaFrac is the anchor-score Gaussian width as a fraction of the
	// mask sweep range (default 0.25).
	GaussSigmaFrac float64

	// Ablation switches, all false for the paper's method.
	DisableFilter bool // skip the erroneous-point filter
	RowSweepOnly  bool // skip the column-major sweep
	NoShrink      bool // keep the search triangle static
}

func (o Options) coreConfig() core.Config {
	cfg := core.Config{
		DisableFilter: o.DisableFilter,
		RowSweepOnly:  o.RowSweepOnly,
		NoShrink:      o.NoShrink,
	}
	cfg.Anchors.DiagonalPoints = o.DiagonalProbes
	cfg.Anchors.GaussSigmaFrac = o.GaussSigmaFrac
	return cfg
}

// BaselineOptions tunes ExtractBaseline; the zero value uses the documented
// defaults (OpenCV-style Canny ratios, 1° Hough resolution).
type BaselineOptions struct {
	CannySigma     float64 // Gaussian σ before edge detection
	CannyHighRatio float64 // high threshold as fraction of max gradient
	NoRefine       bool    // skip total-least-squares slope refinement
	RenderWorkers  int     // full-CSD render workers: 0 = one per CPU, 1 = serial
}

func (o BaselineOptions) config() baseline.Config {
	cfg := baseline.Config{NoRefine: o.NoRefine, RenderWorkers: o.RenderWorkers}
	if o.CannySigma != 0 || o.CannyHighRatio != 0 {
		cfg.Canny = imaging.DefaultCannyConfig()
		if o.CannySigma != 0 {
			cfg.Canny.Sigma = o.CannySigma
		}
		if o.CannyHighRatio != 0 {
			cfg.Canny.HighRatio = o.CannyHighRatio
		}
	}
	return cfg
}

// Extraction is the outcome of a virtual gate extraction, by either method.
type Extraction struct {
	// Matrix is the virtualization matrix: V' = Matrix · V.
	Matrix Matrix2
	// SteepSlope and ShallowSlope are the measured transition-line slopes
	// dV2/dV1 (dot 1's line and dot 2's line respectively).
	SteepSlope   float64
	ShallowSlope float64
	// TripleV1, TripleV2 locate the fitted line intersection in volts.
	TripleV1, TripleV2 float64

	// TransitionPoints are the filtered charge-state transition pixels the
	// fast method located (empty for the baseline).
	TransitionPoints []Point

	// Probes counts distinct voltage configurations measured, and
	// ExperimentTime the dwell time they cost on the instrument's virtual
	// clock; both are zero if the instrument does not track statistics.
	Probes         int
	ExperimentTime time.Duration

	// Detail exposes the full pipeline diagnostics for the fast method.
	Detail *core.Result
	// BaselineDetail exposes the vision-pipeline diagnostics.
	BaselineDetail *baseline.Result
}

// Extract runs the paper's fast virtual gate extraction against inst over
// the scan window. Typical cost is ~10% of the window's pixels.
func Extract(inst Instrument, win Window, opts Options) (*Extraction, error) {
	before := statsOf(inst)
	res, err := core.Extract(csd.PixelSource{Src: inst, Win: win}, win, opts.coreConfig())
	if err != nil {
		return nil, err
	}
	ext := &Extraction{
		Matrix:           res.Matrix,
		SteepSlope:       res.SteepSlope,
		ShallowSlope:     res.ShallowSlope,
		TransitionPoints: res.Points,
		Detail:           res,
	}
	ext.TripleV1, ext.TripleV2 = res.TriplePointVoltage(win)
	fillCost(ext, inst, before)
	return ext, nil
}

// ExtractBaseline runs the comparison method: full-CSD acquisition followed
// by Canny edge detection and a Hough transform. It probes every pixel.
func ExtractBaseline(inst Instrument, win Window, opts BaselineOptions) (*Extraction, error) {
	before := statsOf(inst)
	res, err := baseline.Extract(inst, win, opts.config())
	if err != nil {
		return nil, err
	}
	ext := &Extraction{
		Matrix:         res.Matrix,
		SteepSlope:     res.SteepSlope,
		ShallowSlope:   res.ShallowSlope,
		BaselineDetail: res,
	}
	ext.TripleV1 = win.V1Min + (res.Knee.X+0.5)*win.StepV1()
	ext.TripleV2 = win.V2Min + (res.Knee.Y+0.5)*win.StepV2()
	fillCost(ext, inst, before)
	return ext, nil
}

func statsOf(inst Instrument) Stats {
	if acc, ok := inst.(device.Accountant); ok {
		return acc.Stats()
	}
	return Stats{}
}

func fillCost(ext *Extraction, inst Instrument, before Stats) {
	if acc, ok := inst.(device.Accountant); ok {
		after := acc.Stats()
		ext.Probes = after.UniqueProbes - before.UniqueProbes
		ext.ExperimentTime = after.Virtual - before.Virtual
	}
}

// Benchmark is one synthetic qflow CSD benchmark (see internal/qflow).
type Benchmark = qflow.Benchmark

// Benchmarks returns the 12-benchmark synthetic suite mirroring the paper's
// evaluation data.
func Benchmarks() ([]*Benchmark, error) { return qflow.Suite() }

// BenchmarkInstrument generates a benchmark's CSD and wraps it in a
// dataset-replay instrument with the paper's 50 ms dwell.
func BenchmarkInstrument(b *Benchmark) (Instrument, error) { return b.Instrument() }
