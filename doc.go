// Package fastvg is a Go implementation of fast virtual gate extraction for
// silicon quantum dot devices (Che et al., DAC 2024), together with the
// complete simulation substrate needed to run and evaluate it without
// hardware: a constant-interaction device model, a charge-sensor model,
// realistic measurement noise, dwell-time-accounted instruments, the
// Hough-transform baseline it is compared against, and a 12-benchmark
// synthetic charge-stability-diagram suite mirroring the paper's evaluation.
//
// # Background
//
// A plunger gate on a quantum dot array does not address only its own dot:
// cross-capacitance couples it to the neighbours. Virtual gates fix this by
// recombining physical gate voltages through a virtualization matrix so that
// each virtual knob moves exactly one dot's potential. The matrix entries
// come from the slopes of the charge-state transition lines in a two-gate
// charge stability diagram (CSD). Measuring a full CSD takes minutes because
// every point costs a ~50 ms dwell; this package's Extract probes only ~10%
// of the diagram by exploiting two physics priors — transition lines have
// negative slopes, and the dot's own line is much steeper than its
// neighbour's — to confine an adaptive search to a shrinking triangular
// region around the lines.
//
// # Quick start
//
//	inst, truth, _ := fastvg.NewDoubleDotSim(fastvg.DoubleDotSimOptions{})
//	res, err := fastvg.Extract(inst, inst.Window(), fastvg.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Matrix, res.Probes, res.ExperimentTime)
//	_ = truth
//
// # Serving extractions
//
// Beyond single library calls, the package ships an extraction service
// (internal/service, re-exported here as Service) for workloads where
// extractions arrive as traffic: a typed job model over every pipeline
// (fast, baseline, rays, adaptive, infogain, windowfind, verify), a bounded
// worker-pool scheduler with per-job contexts and deterministic batch
// ordering, a deduplicating LRU result cache keyed by canonical request
// hashes — identical submissions cost zero re-extraction and concurrent
// identical submissions coalesce onto one run — and a session registry
// owning many live instruments concurrently.
//
//	svc, _ := fastvg.NewService(fastvg.ServiceConfig{Workers: 8})
//	res, _ := fastvg.RunJob(ctx, svc, fastvg.JobRequest{Kind: fastvg.JobFast, Benchmark: 6})
//	items := svc.Batch(ctx, fastvg.Table1Requests()) // the paper's Table 1
//
// Command vgxd serves the same service over a JSON HTTP API (submit, batch,
// status, sessions, stats); see README.md for endpoints and a curl
// quickstart, and examples/serving for a self-contained client. The daemon
// exposes liveness at /v1/healthz and shuts down gracefully: the scheduler
// drains (running extractions finish, queued jobs settle as cancelled) and
// sessions close, bounded by -draintimeout.
//
// # N-dot chain extraction
//
// Section 2.3 of the paper virtualizes an N-dot linear array by composing
// its N−1 adjacent-pair extractions into one N×N matrix (Chain). The
// planner (internal/chainx, exposed as ExtractChainSpec and as the service
// job kind JobChain) makes that a first-class workload: the chain job is
// decomposed into pair extractions that run concurrently on the shared
// worker pool, under a probe-budget accountant with reservation semantics
// (admission in pair order at wave barriers; a window can never overspend)
// and a per-pair method escalation ladder — a pair whose fast-method
// anchors fail deterministically falls through to the adaptive pass and
// then the ray fan, mirroring the service's deterministic-failure
// semantics, before the pair is recorded as failed.
//
//	spec := fastvg.ChainSimOptions{Dots: 8, Seed: 3}.Spec()
//	res, _ := fastvg.ExtractChainSpec(ctx, spec, fastvg.ChainExtractOptions{Workers: 7})
//
// Each pair probes an independent instrument whose noise and drift derive
// from (spec seed, pair index) alone (ChainSpec.BuildPair), and all
// cross-pair decisions happen serially in pair order, so a chain
// extraction is bit-identical at any worker count while the instrument
// dwell makespan shrinks by the channel count (~6.6× for N=8; see
// BENCH_chain.json). Chain jobs are cacheable (the canonical hash covers
// the full per-pair window list and escalation ladder), journaled with one
// per-pair record (store.KindChainPair), and traceable: each pair writes
// its own probe trace, replayable through vgxreplay. ExtractChain remains
// the sequential shared-instrument form of the same procedure.
//
// # Fleet calibration
//
// A virtual-gate matrix extracted once goes silently stale: lever arms
// wander under 1/f and drift noise, and charge rearrangements translate the
// honeycomb the matrix was anchored to. The fleet subsystem
// (internal/fleet, re-exported as FleetManager via Service.Fleet) closes
// the loop continuously for many devices at once:
//
//   - Each registered device (FleetDeviceConfig: spec + drift profile +
//     scheduling weight) is monitored with cheap periodic virtualgate.Verify
//     spot-checks on a virtual clock — a handful of short line scans, two
//     orders of magnitude cheaper than a re-extraction.
//   - Staleness is scored against the line positions recorded at
//     calibration time, normalised so 1.0 sits at the drift tolerance; a
//     device whose lines cannot be re-located at all is flagged lost.
//   - Stale devices are re-extracted through the service's own worker pool,
//     highest staleness × weight first, under a global probe budget with
//     reservation-based admission (a budget window can never overspend).
//   - Hysteresis — a healthy/watch band below the threshold plus a
//     per-device cooldown, and the rule that recalibration only ever fires
//     on evidence measured after the previous calibration — guarantees
//     healthy devices are never re-tuned.
//
// Chain devices (FleetDeviceConfig.Chain) bring the N-dot workload into
// the loop with per-pair staleness: every adjacent pair has its own
// instrument, matrix, score, cooldown and hysteresis evidence, so a single
// drifted pair triggers re-extraction of only that pair — partial
// recalibration, roughly an (N−1)-fold probe saving over re-tuning the
// whole array — while fresh neighbouring matrices are reused. A double dot
// is internally a one-pair device; both shapes share one scheduler.
//
// The loop is deterministic: measurement work fans out across workers, but
// each job touches only its own pair's instrument and every scheduling
// decision is made serially in (device ID, pair) order, so a simulated day
// is byte-identical at any worker count. Command vgxfleet runs such a day
// (heterogeneous quiet/standard/wandering/jumpy profiles, plus -chains
// N-dot arrays) and reports recalibrations triggered — partial ones
// counted separately — probes spent against the budget, and worst-case
// staleness; /v1/fleet serves the same loop over HTTP (register, status,
// history, force-recalibrate with ?pair=, tick).
//
// # Surrogate backend
//
// On hardware every probe costs dwell, so the cheapest probe is one that
// never touches the device. internal/surrogate learns a digital twin per
// device — a window-aligned grid of measured currents plus the fitted
// transition-line geometry — and serves probes from it when its confidence
// clears a threshold, escalating the rest to the live instrument
// (surrogate.Hybrid, which satisfies the same instrument contract every
// pipeline probes). Escalated measurements train the twin further; a
// threshold of zero disables twin serving and is byte-identical to the
// wrapped instrument.
//
// A job whose spec sets Surrogate probes twin-first and reports the split
// (hits, escalations, fit state) on its Result. Twin identity is the device
// — the key hashes the spec with the surrogate knobs cleared — so all job
// kinds against one device share a model, plain recorded traces train it
// (POST /v1/surrogate/train), and chain jobs keep one twin per adjacent
// pair. The fleet mounts the same mechanism through
// FleetPolicy.SurrogateThreshold: spot-checks and recalibrations probe
// twin-first, and a drifted pair re-locates its lines with a few short
// guided live scans instead of a full re-raster (delta recalibration),
// cutting the steady-state cost of a matrix refresh by ~5.8× on drift-only
// devices (BENCH_surrogate.json). Twins journal into the store for
// warm-starts, and traces of surrogate jobs carry the pre-extraction twin
// snapshot so replay reproduces the hybrid's decisions bit for bit.
//
// # Active probing
//
// ExtractInfoGain (internal/infogain) replaces raster scanning with a
// Bayesian active scheduler. Each transition line carries a posterior over
// its geometry — a discrete grid of (offset, slope, bend) hypotheses whose
// slope axis maps linearly onto the line's virtualization-matrix entry —
// seeded from a handful of short coarse scans, or narrowed from the start
// by a warm prior (an earlier extraction's slopes and triple point). Every
// probe is chosen to maximise the expected reduction of the posterior
// variance of that matrix entry: candidate cells are σ-quantiles of the
// predicted crossing along a fan of scan lines, scored in closed form from
// the posterior's prefix sums. A probe's bright/dark label then multiplies
// in a noise-tempered likelihood, so no single noisy sample can kill the
// true hypothesis.
//
// The stopping rule is statistical, not positional: extraction ends when
// each entry's 95% confidence interval is at most Config.TargetCI (default
// 0.030). Windows whose pixel lattice cannot support the target — a short
// lever arm bounds the achievable CI from below — are detected by the
// expected-gain test: when no candidate offers gain, the line is at its
// information floor, and the extraction still succeeds if both floors sit
// within 2× the target, else it reports ErrNoConverge. That error is a
// deterministic pipeline outcome, so the chain planner's infogain-first
// ladder (chainx.InfoGainLadder: infogain → fast → adaptive → rays)
// escalates such pairs to the raster method instead of failing the chain.
//
// The scheduler probes only through the instrument contract and makes every
// decision deterministically, so infogain jobs (service kind "infogain")
// record and replay bit-for-bit like every other pipeline, are cacheable
// under the canonical request hash, and chain extractions stay bit-identical
// at any worker count. The fleet mounts it through FleetPolicy.InfoGain:
// scheduled recalibrations re-locate a drifted pair's lines warm-started
// from its last known geometry for a fraction of a re-raster. On the
// default double-dot window the scheduler needs ~70 probes to beat the fast
// method's accuracy (~1030–1100 probes) — a ~15× probe cut
// (BENCH_infogain.json); the posterior update and candidate scoring are
// allocation-free on the hot path.
//
// # Persistence & replay
//
// With ServiceConfig.DataDir set (vgxd -data-dir) the service is durable.
// Every fresh cacheable result and every fleet calibration event is
// appended to a CRC-framed journal (internal/store: journal.log, plus a
// periodically compacted journal.snap written atomically via rename; the
// on-disk format version is store.FormatVersion). A restarted service
// warm-starts its result cache from the journal — previously served
// requests are cache hits again — and the fleet manager restores every
// device's staleness score, cooldown timestamps, hysteresis evidence,
// budget window and history, so a daemon bounce never forces the fleet
// back through full re-extraction. Recovery is crash-safe: a torn trailing
// frame (the signature of dying mid-append) is truncated, never fatal.
//
// With RecordTraces (vgxd -record-traces) every executed extraction also
// writes a probe trace (internal/trace): each (voltages, time, current)
// sample, content-addressed under DataDir/traces. Command vgxreplay
// re-executes recordings offline — traces against the recorded samples
// with zero live-instrument probes, journal entries against fresh
// simulated instruments — and diffs the reproduced virtual-gate matrices
// bit-for-bit against the recorded ones (ReplayTrace / ReplayJournal in
// the library). Recorded device responses thereby become regression tests:
// any divergence is an extraction-code change or a corrupted recording.
//
// # Observability
//
// Package internal/telemetry is the dependency-free observability core: a
// metrics registry (counters, gauges, fixed-bucket histograms — all
// vgx_*-prefixed, registration-linted, updated with single atomic
// operations and zero allocations) rendered in Prometheus text format at
// vgxd's GET /metrics, and a span tracer recording one
// job→pipeline→pair→probes timing tree per executed job. Every span
// carries wall-clock time next to virtual simulated-instrument time —
// the gap between the two is the paper's argument, so both are
// first-class. Durable services journal the trees by request hash;
// `vgxreplay -spans` dumps them, GET /v1/spans serves them live, and
// LoadSpans reads them from the library. Exposition is deterministic
// (families by name, series by key-sorted label signature): a fixed job
// set leaves byte-identical /metrics text at any worker count.
//
// ServiceConfig.MaxQueueDepth (vgxd -max-queue-depth) sheds submissions
// with ErrServiceOverloaded — HTTP 429 plus Retry-After — once that many
// jobs are queued, while cache hits are still served. The daemons log
// structured lines (log/slog, -log-format text|json) carrying each
// request's X-Request-ID, which is echoed on responses and recorded as
// the req_id attribute of the job's span tree. vgxd -pprof mounts
// net/http/pprof on the service listener. ServiceConfig.DisableTelemetry
// turns off the timed parts (spans, latency histograms) while keeping
// the counters /v1/stats is built from.
//
// # Alerting & history
//
// Exposition answers "what is the value now"; operating a daemon needs
// "what has it been doing". Every service scrapes its own registry into
// an in-process time-series store (internal/tsdb: fixed-size
// delta-encoded rings, bounded memory forever, ~70 µs per full scrape)
// and evaluates a declarative SLO rule catalogue (internal/alert) over
// it on every scrape — a threshold plus for-duration state machine
// whose firing/resolved transitions are journaled on durable services,
// restored on restart, and readable offline (LoadAlertHistory,
// vgxreplay -alerts). The stock catalogue (DefaultAlertRules — load
// shedding, fleet staleness, persist errors, surrogate escalation
// ratio, pool saturation) is replaced via ServiceConfig.AlertRules or a
// JSON file on vgxd. Instant and range queries (last/avg/min/max/sum,
// windowed rate, histogram quantile) are served at GET /v1/query, the
// alert board at GET /v1/alerts, and GET /debug/bundle snapshots a
// flight-recorder tar.gz (metrics, tsdb windows, alerts, stats, fleet
// state, build info, span trees) for bug reports. Command vgxtop is the
// terminal dashboard over the same endpoints.
//
// Scraping runs on the daemon's wall clock (ServiceConfig.ScrapeInterval,
// vgxd -scrape-interval) or on a caller-owned clock via
// Service.ScrapeNow(atS) — the fleet's virtual-time tests evaluate
// alerts that way, so alert sequences are deterministic at any worker
// count, like every other subsystem here.
//
// # Sharded serving
//
// One service is one worker pool, one cache, one fleet slice, one
// journal. NewCluster (internal/shard; vgxd -shards N) runs N complete
// shard services behind a stateless consistent-hash front door:
// placement is a pure function of (key, shard count) on a 256-vnode
// ring, with sim and chain jobs routed by canonical spec hash — the
// same identity the cache and twin registry key on, so a device's
// cache entries, twins and journal ranges co-locate — fleet devices by
// device ID, and sessions and job handles by the s<i>- prefix their
// shard minted. The router scatter-gathers batches by ring owner and
// merges in request order (results are byte-identical at any shard
// count), coalesces concurrent identical submissions onto the one
// in-flight extraction on the owning shard, relays a saturated shard's
// 429 + Retry-After verbatim (IsOverloaded holds through Cluster.Run
// and Submit), and merges observability: /metrics and /v1/query label
// every series with its shard, /v1/healthz rolls up with down shards
// listed, and vgxtop folds the labels back into one fleet view.
//
// Durable clusters (ClusterConfig.DataDir) journal per shard under
// shard-<i>/ and record the shard count in cluster.json; OpenCluster
// at a different count (or RebalanceShards offline) reshapes by
// shipping exactly the journal records whose ring owner changed —
// about 1/N of the data on a join, reported key-by-key in the
// ClusterRebalanceReport — after which every previously served request
// is a cache hit again and every device answers from its new home
// shard with history intact. A shard dying takes out only its arc:
// survivors keep serving while the victim's keys return 503, and a
// restart warm-starts cache, fleet and alert state from the shard's
// own journal. Single-process serving is exactly the 1-shard cluster.
//
// # Performance
//
// The probe hot path — one simulated getCurrent — is allocation-free in
// steady state: ground states come from a precomputed energy table, the
// sensor response from a fixed-arity fast path, and memoisation from flat
// per-row buffers. Each fast path performs the generic path's
// floating-point operations in the same order, so probing is bit-identical
// to the pre-optimisation code; property tests enforce that parity.
//
// Instruments also implement BatchInstrument: CurrentRow serves a whole
// scan row per call, ProbeMany an arbitrary probe list, and AcquireGrid a
// full window, with the clock-free physics computed in parallel and the
// temporal noise replayed serially on the virtual clock — a parallel
// render is byte-identical to a scalar raster at any worker count. Full-CSD
// consumers (the baseline method, benchmark generation, service jobs)
// route through these automatically; SimInstrument.AcquireCSD exposes the
// batched render directly.
//
// Benchmarks live in internal/device (BenchmarkProbeScalar and
// BenchmarkProbeBatch must report 0 allocs/op, BenchmarkGridRender* track
// full-window renders, BenchmarkProbeBare vs BenchmarkProbeCounted gates
// telemetry overhead on the probe path at <2%); scripts/bench.sh runs
// them and writes the BENCH_probe.json trajectory, whose "before" block
// preserves the pre-batch-path baseline, plus BENCH_telemetry.json,
// BENCH_obs.json (tsdb scrape/append/query cost) and BENCH_shard.json
// (front-door throughput scaling across shard counts). See README.md's
// Performance section for representative numbers.
//
// See examples/ for runnable programs: a quick start, quadruple-dot chain
// virtualization, a noise-robustness study, a dwell-budget comparison and
// the serving demo.
package fastvg
