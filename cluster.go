package fastvg

import (
	"context"
	"net/http"

	"github.com/fastvg/fastvg/internal/shard"
)

// Sharded multi-node serving: N complete services (shards) behind one
// stateless consistent-hash front door (internal/shard). Each shard owns
// its own worker pool, result cache, twin registry, fleet slice and
// journal; the router hashes device/session/spec identities onto the
// ring, scatter-gathers batch and fleet-summary work, coalesces
// identical in-flight requests, and merges /metrics and /v1/query with a
// per-shard label. Single-process serving is exactly a 1-shard cluster.

// Cluster is the sharded serving layer: N shard services behind one
// consistent-hash router.
type Cluster = shard.Cluster

// ClusterConfig configures a cluster: the shard count, the cluster data
// directory (shard i journals under <DataDir>/shard-i) and the per-shard
// service configuration template.
type ClusterConfig = shard.Config

// ClusterHealth is the merged liveness snapshot: ok only when every
// shard is up and accepting, capacity summed, down shards listed.
type ClusterHealth = shard.Health

// ClusterRebalanceReport proves what a shard-count change shipped:
// exactly the journaled keys whose ring owner changed, and nothing else.
type ClusterRebalanceReport = shard.RebalanceReport

// ClusterMove is one journaled key shipped between shards.
type ClusterMove = shard.Move

// ShardRing is the consistent-hash ring the router places identities
// with; placement is a pure function of (key, shard count).
type ShardRing = shard.Ring

// NewShardRing builds the placement ring for n shards.
func NewShardRing(n int) *ShardRing { return shard.NewRing(n) }

// NewCluster builds and starts an N-shard cluster. For durable clusters
// whose shard count may have changed since the data dir was written,
// use OpenCluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return shard.New(cfg) }

// OpenCluster reads the cluster manifest under cfg.DataDir, rebalances
// journal ranges if the shard count changed since the last run, and
// starts the cluster. The report is nil when nothing moved.
func OpenCluster(cfg ClusterConfig) (*Cluster, *ClusterRebalanceReport, error) {
	return shard.Open(cfg)
}

// ClusterHandler returns the front door: the same JSON HTTP surface a
// single service serves, behind routing, scatter-gather and per-shard
// scrape merging.
func ClusterHandler(c *Cluster) http.Handler { return c.Handler() }

// CloseCluster drains every shard concurrently (bounded by ctx).
func CloseCluster(ctx context.Context, c *Cluster) error { return c.Close(ctx) }

// RebalanceShards reshapes a cluster data dir from one shard count to
// another offline, shipping only the journal ranges whose keys changed
// ring owner. OpenCluster calls this automatically; it is exported for
// explicit offline reshapes.
func RebalanceShards(dataDir string, from, to int) (*ClusterRebalanceReport, error) {
	return shard.Rebalance(dataDir, from, to)
}
