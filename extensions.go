package fastvg

import (
	"context"

	"github.com/fastvg/fastvg/internal/autotune"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/infogain"
	"github.com/fastvg/fastvg/internal/rays"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// This file exposes the repository's extensions beyond the paper: the
// ray-based comparison method, the adaptive coarse-to-fine pass, and the
// automatic scan-window finder.

// RayOptions tunes ExtractRays; the zero value uses the package defaults
// (24 rays, σ-adaptive drop detection).
type RayOptions struct {
	NumRays   int     // rays in the fan; default 24
	DropSigma float64 // transition detection threshold in noise-σ units; default 6
}

func raysConfig(o RayOptions) rays.Config {
	return rays.Config{NumRays: o.NumRays, DropSigma: o.DropSigma}
}

// ExtractRays runs the ray-casting method (after Ziegler et al. 2023): a fan
// of rays from inside the (0,0) region, each walked until the sensor current
// drops past the local noise floor. A second comparison point alongside the
// Hough baseline; costs more probes than Extract but fewer than a full CSD.
func ExtractRays(inst Instrument, win Window, opts RayOptions) (*Extraction, error) {
	before := statsOf(inst)
	res, err := rays.Extract(csd.PixelSource{Src: inst, Win: win}, win, rays.Config{
		NumRays:   opts.NumRays,
		DropSigma: opts.DropSigma,
	})
	if err != nil {
		return nil, err
	}
	ext := &Extraction{
		Matrix:       res.Matrix,
		SteepSlope:   res.SteepSlope,
		ShallowSlope: res.ShallowSlope,
	}
	fillCost(ext, inst, before)
	return ext, nil
}

// AdaptiveOptions tunes ExtractAdaptive.
type AdaptiveOptions struct {
	Options
	// CoarseFactor is the subsampling of the first pass (default 4).
	CoarseFactor int
}

// ExtractAdaptive runs the coarse-to-fine extension: a reduced-resolution
// extraction locates the lines, then only the full-resolution sweeps run.
// On 200×200 windows this saves ~30% of the probes relative to Extract at
// equal accuracy.
func ExtractAdaptive(inst Instrument, win Window, opts AdaptiveOptions) (*Extraction, error) {
	before := statsOf(inst)
	cfg := core.AdaptiveConfig{Config: opts.Options.coreConfig(), CoarseFactor: opts.CoarseFactor}
	res, err := core.ExtractAdaptive(csd.PixelSource{Src: inst, Win: win}, win, cfg)
	if err != nil {
		return nil, err
	}
	fine := res.Fine
	ext := &Extraction{
		Matrix:           fine.Matrix,
		SteepSlope:       fine.SteepSlope,
		ShallowSlope:     fine.ShallowSlope,
		TransitionPoints: fine.Points,
		Detail:           fine,
	}
	ext.TripleV1, ext.TripleV2 = fine.TriplePointVoltage(win)
	fillCost(ext, inst, before)
	return ext, nil
}

// InfoGainOptions tunes ExtractInfoGain; the zero value uses the package
// defaults (CI target 0.030 on each matrix entry, 500-probe cap).
type InfoGainOptions struct {
	TargetCI  float64 // stop when each matrix entry's 95% CI is this wide; default 0.030
	MaxProbes int     // active-probe cap before giving up; default 500
	NoiseEps  float64 // assumed probe mislabel probability; default 0.08
	// Prior warm-starts the posterior from an earlier extraction of the
	// same pair: slopes plus triple point narrow the hypothesis grids and
	// the seed scans. Nil starts cold.
	Prior *InfoGainPrior
}

// InfoGainPrior carries an earlier geometry for warm-started scheduling.
type InfoGainPrior struct {
	SteepSlope   float64 // dV2/dV1, as reported by any extraction
	ShallowSlope float64
	TripleV1     float64 // triple-point gate voltages
	TripleV2     float64
}

func infoGainConfig(o InfoGainOptions) infogain.Config {
	cfg := infogain.Config{
		TargetCI:  o.TargetCI,
		MaxProbes: o.MaxProbes,
		NoiseEps:  o.NoiseEps,
	}
	if p := o.Prior; p != nil {
		cfg.Prior = &infogain.Prior{
			SteepSlope:   p.SteepSlope,
			ShallowSlope: p.ShallowSlope,
			TripleV1:     p.TripleV1,
			TripleV2:     p.TripleV2,
		}
	}
	return cfg
}

// ExtractInfoGain runs the Bayesian active scheduler: a posterior over each
// transition line's geometry is seeded from short coarse scans (or a prior
// extraction), then each probe goes to the cell with the largest expected
// posterior-variance reduction until the matrix-entry CI target is met. On
// the default double-dot window it needs an order of magnitude fewer probes
// than Extract; it returns ErrNoConverge-wrapped errors when the window's
// information floor sits above the target.
func ExtractInfoGain(inst Instrument, win Window, opts InfoGainOptions) (*Extraction, error) {
	before := statsOf(inst)
	res, err := infogain.Extract(csd.PixelSource{Src: inst, Win: win}, win, infoGainConfig(opts))
	if err != nil {
		return nil, err
	}
	ext := &Extraction{
		Matrix:       res.Matrix,
		SteepSlope:   res.SteepSlope,
		ShallowSlope: res.ShallowSlope,
	}
	ext.TripleV1, ext.TripleV2 = res.TriplePointVoltage(win)
	fillCost(ext, inst, before)
	return ext, nil
}

// WindowSearch is the outcome of FindWindow.
type WindowSearch struct {
	Window Window
	Probes int
}

// FindWindow coarse-scans a broad voltage range on inst and proposes a
// pixels×pixels scan window framing the first-electron transition lines —
// the step upstream of Extract when line positions are unknown.
func FindWindow(inst Instrument, v1Min, v1Max, v2Min, v2Max float64, pixels int) (*WindowSearch, error) {
	before := statsOf(inst)
	res, err := autotune.FindWindow(inst, v1Min, v1Max, v2Min, v2Max, pixels, autotune.Config{})
	if err != nil {
		return nil, err
	}
	ws := &WindowSearch{Window: res.Window}
	after := statsOf(inst)
	ws.Probes = after.UniqueProbes - before.UniqueProbes
	return ws, nil
}

// StateAt classifies a gate-voltage point into one of the four charge
// regions using a completed fast extraction (N1 = 1 right of the steep line,
// N2 = 1 above the shallow line). It needs the extraction Detail, so it is
// available for Extract and ExtractAdaptive results only.
func (e *Extraction) StateAt(win Window, v1, v2 float64) (n1, n2 int, ok bool) {
	if e.Detail == nil {
		return 0, 0, false
	}
	s := e.Detail.StateAt(win, v1, v2)
	return s.N1, s.N2, true
}

// VerifyOptions tunes VerifyMatrix; the zero value re-locates each line at
// three positions with a 2%-of-span drift tolerance.
type VerifyOptions struct {
	MaxShiftFrac float64 // allowed line drift as a window-span fraction; default 0.02
}

// Verification reports an on-device matrix check.
type Verification struct {
	OK           bool
	SteepShift   float64 // mV of steep-line drift under virtual stepping
	ShallowShift float64
	Probes       int
}

// VerifyMatrix checks an extracted virtualization on the device itself: it
// steps each virtual gate and re-locates the other dot's transition line
// with short 1-D scans in virtual coordinates (the measurement equivalent of
// the paper's manual inspection of the warped diagram). ext must come from
// Extract or ExtractAdaptive (the triple point is needed). ctx cancels the
// check between probes.
func VerifyMatrix(ctx context.Context, inst Instrument, win Window, ext *Extraction, opts VerifyOptions) (*Verification, error) {
	res, err := virtualgate.Verify(ctx, inst, win, ext.Matrix, ext.TripleV1, ext.TripleV2,
		virtualgate.VerifyConfig{MaxShiftFrac: opts.MaxShiftFrac})
	if err != nil {
		return nil, err
	}
	return &Verification{
		OK:           res.OK,
		SteepShift:   res.SteepShift,
		ShallowShift: res.ShallowShift,
		Probes:       res.Probes,
	}, nil
}
