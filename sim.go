package fastvg

import (
	"fmt"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// NoiseParams is the serialisable description of a measurement-noise model:
// white (σ), 1/f (amplitude), random-telegraph (amplitude, rate) and drift.
type NoiseParams = noise.Params

// GroundTruth carries the analytic line slopes of a simulated device so that
// extractions can be scored without manual inspection.
type GroundTruth struct {
	SteepSlope   float64
	ShallowSlope float64
}

// DoubleDotSimOptions configures NewDoubleDotSim. The zero value gives a
// clean 100×100, 50 mV window with paper-typical line geometry.
type DoubleDotSimOptions struct {
	SteepSlope   float64 // dV2/dV1 of dot 1's line; default -8
	ShallowSlope float64 // dV2/dV1 of dot 2's line; default -0.12
	CrossXFrac   float64 // steep line's bottom-edge crossing as window fraction; default 0.68
	CrossYFrac   float64 // shallow line's left-edge crossing; default 0.63
	Pixels       int     // window resolution; default 100
	SpanMV       float64 // window span in mV; default Pixels/2 (δ = 0.5 mV)

	Lambda1, Lambda2 float64 // sensor contrast per dot; default 0.47 / 0.45

	Noise NoiseParams // zero = noiseless
	Seed  uint64      // noise realisation seed
}

// SimSpec is the serialisable description of a simulated double-dot device;
// it is the form the extraction service accepts in job requests, and
// DoubleDotSimOptions converts to it one-to-one.
type SimSpec = device.DoubleDotSpec

// Spec returns the options as a serialisable device specification.
func (o DoubleDotSimOptions) Spec() SimSpec {
	return SimSpec{
		SteepSlope:   o.SteepSlope,
		ShallowSlope: o.ShallowSlope,
		CrossXFrac:   o.CrossXFrac,
		CrossYFrac:   o.CrossYFrac,
		Pixels:       o.Pixels,
		SpanMV:       o.SpanMV,
		Lambda1:      o.Lambda1,
		Lambda2:      o.Lambda2,
		Noise:        o.Noise,
		Seed:         o.Seed,
	}
}

// BatchInstrument is the batched probing contract: whole scan rows or
// arbitrary probe lists served in one call, bit-identically to the
// equivalent GetCurrent sequence (same currents, Stats and noise
// realisation). Simulated instruments implement it; the acquisition and
// extraction pipelines route through it automatically.
type BatchInstrument = device.BatchInstrument

// SimInstrument is a simulated double-dot measurement instrument; it
// implements Instrument — and BatchInstrument, the zero-allocation batched
// probing fast path — and tracks probe statistics.
type SimInstrument struct {
	*device.SimInstrument
	win Window
}

// Window returns the scan window the simulator was built for.
func (s *SimInstrument) Window() Window { return s.win }

// AcquireCSD renders the simulator's full scan window through the batched
// acquisition fast path: the clock-free physics fans out across workers
// (<= 0 means one per CPU) and the noise replays serially on the virtual
// clock, so the grid, probe accounting and noise realisation are
// bit-identical to a scalar raster at any worker count.
func (s *SimInstrument) AcquireCSD(workers int) (*Grid, error) {
	return s.AcquireGrid(s.win, workers)
}

// ProbeMap returns the window pixels measured so far, the sim counterpart of
// a benchmark instrument's probe map (the paper's Figure 7 data). Probes the
// pipelines took one pixel past the window edge are omitted.
func (s *SimInstrument) ProbeMap() []Point {
	cells := s.ProbedCells()
	pts := make([]Point, 0, len(cells))
	for _, c := range cells {
		x, y := int(c[0]), int(c[1])
		if x < 0 || x >= s.win.Cols || y < 0 || y >= s.win.Rows {
			continue
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	return pts
}

// NewDoubleDotSim builds a simulated double-dot device with a charge sensor
// and returns an instrument over it, plus the device's analytic ground
// truth. The instrument charges the paper's 50 ms dwell per new probe on a
// virtual clock and memoises re-probed pixels.
func NewDoubleDotSim(opts DoubleDotSimOptions) (*SimInstrument, GroundTruth, error) {
	spec := opts.Spec()
	inst, win, err := spec.Build()
	truth := GroundTruth{SteepSlope: spec.SteepSlope, ShallowSlope: spec.ShallowSlope}
	if err != nil {
		return nil, truth, fmt.Errorf("fastvg: %w", err)
	}
	return &SimInstrument{SimInstrument: inst, win: win}, truth, nil
}

// ChainSimOptions configures NewChainSim; the zero value gives a clean
// 4-dot chain.
type ChainSimOptions struct {
	Dots      int     // number of dots/plungers; default 4
	CrossFrac float64 // nearest-neighbour lever-arm fraction; default 0.12
	Noise     NoiseParams
	Seed      uint64
}

// ChainSpec is the serialisable description of a simulated N-dot chain
// device; it is the form the extraction service accepts in chain job
// requests and the fleet accepts for chain devices, and ChainSimOptions
// converts to it one-to-one.
type ChainSpec = device.ChainSpec

// Spec returns the options as a serialisable chain device specification.
func (o ChainSimOptions) Spec() ChainSpec {
	return ChainSpec{
		Dots:      o.Dots,
		CrossFrac: o.CrossFrac,
		Noise:     o.Noise,
		Seed:      o.Seed,
	}
}

// ChainSim is a simulated N-dot linear array with one shared charge sensor.
type ChainSim struct {
	Inst *device.MultiInstrument
	Phys *physics.Array

	spec   ChainSpec
	spanMV float64 // recommended pair scan span
}

// NewChainSim builds a homogeneous N-dot chain device under one shared
// instrument (every pair extraction probes the same device, as on
// hardware). Ground-truth pair slopes are available via PairTruth;
// RecommendedWindow returns a pair scan window that frames the
// first-electron lines the way the paper's cropped CSDs do. For concurrent,
// deterministic chain extraction use ExtractChainSpec with the Spec form
// instead: it builds independent per-pair instruments.
func NewChainSim(opts ChainSimOptions) (*ChainSim, error) {
	spec := opts.Spec()
	inst, _, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("fastvg: %w", err)
	}
	return &ChainSim{
		Inst:   inst,
		Phys:   inst.Dev.Phys,
		spec:   spec,
		spanMV: spec.SpanMV(),
	}, nil
}

// Spec returns the serialisable chain device specification the sim was
// built from.
func (c *ChainSim) Spec() ChainSpec { return c.spec }

// RecommendedWindow returns the pair scan window NewChainSim tuned the
// sensor for, at the given pixel resolution.
func (c *ChainSim) RecommendedWindow(pixels int) Window {
	return NewWindow(0, 0, c.spanMV, pixels)
}

// PairTruth returns the analytic (steep, shallow) slopes of the (i, i+1)
// gate pair.
func (c *ChainSim) PairTruth(i int) (steep, shallow float64) {
	return c.Phys.PairSlopes(i)
}

// PairInstrument exposes gates (i, i+1) as a two-gate Instrument with every
// other gate held at base (len = number of dots).
func (c *ChainSim) PairInstrument(i int, base []float64) (Instrument, error) {
	return device.NewPairView(c.Inst, i, i+1, base)
}

// Chain composes pairwise extractions into an N×N virtualization.
type Chain = virtualgate.Chain

// NewChain allocates an identity chain virtualization for n dots.
func NewChain(n int) (*Chain, error) { return virtualgate.NewChain(n) }
