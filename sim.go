package fastvg

import (
	"errors"
	"fmt"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// NoiseParams is the serialisable description of a measurement-noise model:
// white (σ), 1/f (amplitude), random-telegraph (amplitude, rate) and drift.
type NoiseParams = noise.Params

// GroundTruth carries the analytic line slopes of a simulated device so that
// extractions can be scored without manual inspection.
type GroundTruth struct {
	SteepSlope   float64
	ShallowSlope float64
}

// DoubleDotSimOptions configures NewDoubleDotSim. The zero value gives a
// clean 100×100, 50 mV window with paper-typical line geometry.
type DoubleDotSimOptions struct {
	SteepSlope   float64 // dV2/dV1 of dot 1's line; default -8
	ShallowSlope float64 // dV2/dV1 of dot 2's line; default -0.12
	CrossXFrac   float64 // steep line's bottom-edge crossing as window fraction; default 0.68
	CrossYFrac   float64 // shallow line's left-edge crossing; default 0.63
	Pixels       int     // window resolution; default 100
	SpanMV       float64 // window span in mV; default Pixels/2 (δ = 0.5 mV)

	Lambda1, Lambda2 float64 // sensor contrast per dot; default 0.47 / 0.45

	Noise NoiseParams // zero = noiseless
	Seed  uint64      // noise realisation seed
}

// SimSpec is the serialisable description of a simulated double-dot device;
// it is the form the extraction service accepts in job requests, and
// DoubleDotSimOptions converts to it one-to-one.
type SimSpec = device.DoubleDotSpec

// Spec returns the options as a serialisable device specification.
func (o DoubleDotSimOptions) Spec() SimSpec {
	return SimSpec{
		SteepSlope:   o.SteepSlope,
		ShallowSlope: o.ShallowSlope,
		CrossXFrac:   o.CrossXFrac,
		CrossYFrac:   o.CrossYFrac,
		Pixels:       o.Pixels,
		SpanMV:       o.SpanMV,
		Lambda1:      o.Lambda1,
		Lambda2:      o.Lambda2,
		Noise:        o.Noise,
		Seed:         o.Seed,
	}
}

// BatchInstrument is the batched probing contract: whole scan rows or
// arbitrary probe lists served in one call, bit-identically to the
// equivalent GetCurrent sequence (same currents, Stats and noise
// realisation). Simulated instruments implement it; the acquisition and
// extraction pipelines route through it automatically.
type BatchInstrument = device.BatchInstrument

// SimInstrument is a simulated double-dot measurement instrument; it
// implements Instrument — and BatchInstrument, the zero-allocation batched
// probing fast path — and tracks probe statistics.
type SimInstrument struct {
	*device.SimInstrument
	win Window
}

// Window returns the scan window the simulator was built for.
func (s *SimInstrument) Window() Window { return s.win }

// AcquireCSD renders the simulator's full scan window through the batched
// acquisition fast path: the clock-free physics fans out across workers
// (<= 0 means one per CPU) and the noise replays serially on the virtual
// clock, so the grid, probe accounting and noise realisation are
// bit-identical to a scalar raster at any worker count.
func (s *SimInstrument) AcquireCSD(workers int) (*Grid, error) {
	return s.AcquireGrid(s.win, workers)
}

// ProbeMap returns the window pixels measured so far, the sim counterpart of
// a benchmark instrument's probe map (the paper's Figure 7 data). Probes the
// pipelines took one pixel past the window edge are omitted.
func (s *SimInstrument) ProbeMap() []Point {
	cells := s.ProbedCells()
	pts := make([]Point, 0, len(cells))
	for _, c := range cells {
		x, y := int(c[0]), int(c[1])
		if x < 0 || x >= s.win.Cols || y < 0 || y >= s.win.Rows {
			continue
		}
		pts = append(pts, Point{X: x, Y: y})
	}
	return pts
}

// NewDoubleDotSim builds a simulated double-dot device with a charge sensor
// and returns an instrument over it, plus the device's analytic ground
// truth. The instrument charges the paper's 50 ms dwell per new probe on a
// virtual clock and memoises re-probed pixels.
func NewDoubleDotSim(opts DoubleDotSimOptions) (*SimInstrument, GroundTruth, error) {
	spec := opts.Spec()
	inst, win, err := spec.Build()
	truth := GroundTruth{SteepSlope: spec.SteepSlope, ShallowSlope: spec.ShallowSlope}
	if err != nil {
		return nil, truth, fmt.Errorf("fastvg: %w", err)
	}
	return &SimInstrument{SimInstrument: inst, win: win}, truth, nil
}

// ChainSimOptions configures NewChainSim; the zero value gives a clean
// 4-dot chain.
type ChainSimOptions struct {
	Dots      int     // number of dots/plungers; default 4
	CrossFrac float64 // nearest-neighbour lever-arm fraction; default 0.12
	Noise     NoiseParams
	Seed      uint64
}

// ChainSim is a simulated N-dot linear array with one shared charge sensor.
type ChainSim struct {
	Inst *device.MultiInstrument
	Phys *physics.Array

	spanMV float64 // recommended pair scan span
}

// NewChainSim builds a homogeneous N-dot chain device. Ground-truth pair
// slopes are available via PairTruth; RecommendedWindow returns a pair scan
// window that frames the first-electron lines the way the paper's cropped
// CSDs do.
func NewChainSim(opts ChainSimOptions) (*ChainSim, error) {
	if opts.Dots == 0 {
		opts.Dots = 4
	}
	if opts.Dots < 2 {
		return nil, errors.New("fastvg: chain needs at least 2 dots")
	}
	if opts.CrossFrac == 0 {
		opts.CrossFrac = 0.12
	}
	const alphaOwn, offset = 0.08, -2.0
	phys, err := physics.UniformChain(opts.Dots, 4, 0.3, alphaOwn, opts.CrossFrac, 0.3, offset)
	if err != nil {
		return nil, err
	}
	// The first-electron line crosses its own-gate axis at -offset/alphaOwn;
	// frame it at ~65% of the window so the triple point sits inside and the
	// (0,0) region stays the brightest part (the anchor heuristics\' regime).
	crossing := -offset / alphaOwn
	span := crossing / 0.65
	n := opts.Dots
	sens := sensor.Params{
		Base: 0.05, PeakAmp: 1, PeakPos: 1.7, PeakWidth: 1,
		Kappa:  make([]float64, n),
		Lambda: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// The background flank is driven mainly by the scanned pair: q sweeps
		// ~1.5 peak widths across one pair window.
		sens.Kappa[i] = 1.5 / (2 * span)
		sens.Lambda[i] = 0.46
	}
	dev := &device.ArrayDevice{Phys: phys, Sens: sens, Noise: opts.Noise.Build(opts.Seed)}
	return &ChainSim{
		Inst:   device.NewMultiInstrument(dev, device.DefaultDwell, span/128),
		Phys:   phys,
		spanMV: span,
	}, nil
}

// RecommendedWindow returns the pair scan window NewChainSim tuned the
// sensor for, at the given pixel resolution.
func (c *ChainSim) RecommendedWindow(pixels int) Window {
	return NewWindow(0, 0, c.spanMV, pixels)
}

// PairTruth returns the analytic (steep, shallow) slopes of the (i, i+1)
// gate pair.
func (c *ChainSim) PairTruth(i int) (steep, shallow float64) {
	return c.Phys.PairSlopes(i)
}

// PairInstrument exposes gates (i, i+1) as a two-gate Instrument with every
// other gate held at base (len = number of dots).
func (c *ChainSim) PairInstrument(i int, base []float64) (Instrument, error) {
	return device.NewPairView(c.Inst, i, i+1, base)
}

// Chain composes pairwise extractions into an N×N virtualization.
type Chain = virtualgate.Chain

// NewChain allocates an identity chain virtualization for n dots.
func NewChain(n int) (*Chain, error) { return virtualgate.NewChain(n) }

// ExtractChain performs the paper's n-dot procedure (Section 2.3): one pair
// extraction per adjacent plunger pair, composed into a chain
// virtualization. windows[i] is the scan window for pair (i, i+1); base is
// the operating point for the gates not being scanned.
func ExtractChain(sim *ChainSim, windows []Window, base []float64, opts Options) (*Chain, []*Extraction, error) {
	n := sim.Phys.N
	if len(windows) != n-1 {
		return nil, nil, fmt.Errorf("fastvg: need %d windows, got %d", n-1, len(windows))
	}
	chain, err := NewChain(n)
	if err != nil {
		return nil, nil, err
	}
	exts := make([]*Extraction, 0, n-1)
	for i := 0; i < n-1; i++ {
		pi, err := sim.PairInstrument(i, base)
		if err != nil {
			return nil, nil, err
		}
		ext, err := Extract(pi, windows[i], opts)
		if err != nil {
			return nil, nil, fmt.Errorf("fastvg: pair (%d,%d): %w", i, i+1, err)
		}
		if err := chain.SetPair(i, ext.Matrix); err != nil {
			return nil, nil, err
		}
		exts = append(exts, ext)
	}
	return chain, exts, nil
}
