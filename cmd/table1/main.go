// Command table1 reproduces the paper's Table 1: it runs the fast virtual
// gate extraction and the Hough-transform baseline on all 12 synthetic qflow
// benchmarks and prints the result summary.
//
// Usage:
//
//	table1 [-v] [-format text|markdown|csv] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/evalx"
	"github.com/fastvg/fastvg/internal/report"
)

func main() {
	verbose := flag.Bool("v", false, "print per-benchmark diagnostics")
	format := flag.String("format", "text", "output format: text, markdown or csv")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = sequential)")
	flag.Parse()

	var rows []evalx.Table1Row
	var err error
	if *parallel > 0 {
		rows, err = evalx.RunTable1Parallel(core.Config{}, baseline.Config{}, *parallel)
	} else {
		rows, err = evalx.RunTable1(core.Config{}, baseline.Config{})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}

	tbl := report.NewTable("CSD", "Size", "Fast", "Base",
		"Probed (fast)", "Base pts", "Fast time", "Base time", "Speedup")
	for _, r := range rows {
		sp := "N/A"
		if v, ok := r.Speedup(); ok {
			sp = fmt.Sprintf("%.2fx", v)
		}
		if err := tbl.AddRow(
			fmt.Sprintf("%d", r.Benchmark.Index),
			fmt.Sprintf("%dx%d", r.Benchmark.Size, r.Benchmark.Size),
			passFail(r.Fast.Success),
			passFail(r.Baseline.Success),
			fmt.Sprintf("%d (%.2f%%)", r.Fast.Probes, r.Fast.ProbePct),
			fmt.Sprintf("%d", r.Baseline.Probes),
			fmt.Sprintf("%.2fs", r.Fast.TotalS),
			fmt.Sprintf("%.2fs", r.Baseline.TotalS),
			sp,
		); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
	}
	if err := tbl.Write(os.Stdout, report.Format(*format)); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	fast, base := evalx.SuccessCounts(rows)
	fmt.Printf("\nSuccess: fast %d/12 (paper: 10/12), baseline %d/12 (paper: 9/12)\n", fast, base)

	if *verbose {
		for _, r := range rows {
			fmt.Printf("\nCSD %d: truth steep=%.3f shallow=%.3f\n", r.Benchmark.Index,
				r.Benchmark.Truth.SteepSlope, r.Benchmark.Truth.ShallowSlope)
			fmt.Printf("  fast: steep=%.3f shallow=%.3f err=(%.2f°, %.2f°) %v %s\n",
				r.Fast.SteepSlope, r.Fast.ShallowSlope, r.Fast.SteepErrDeg, r.Fast.ShallowErrDeg,
				r.Fast.Success, r.Fast.FailReason)
			fmt.Printf("  base: steep=%.3f shallow=%.3f err=(%.2f°, %.2f°) %v %s\n",
				r.Baseline.SteepSlope, r.Baseline.ShallowSlope, r.Baseline.SteepErrDeg, r.Baseline.ShallowErrDeg,
				r.Baseline.Success, r.Baseline.FailReason)
		}
	}
}

func passFail(ok bool) string {
	if ok {
		return "Success"
	}
	return "Fail"
}
