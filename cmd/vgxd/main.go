// Command vgxd is the virtual gate extraction daemon: it serves the
// extraction service's JSON API over HTTP, scheduling jobs on a bounded
// worker pool and deduplicating identical requests through the result cache.
//
//	vgxd -addr :8080 -workers 8 -cache 2048
//
// With -data-dir the daemon is durable: cacheable results and fleet
// calibration state are journaled (internal/store) as they happen, and a
// restart warm-starts the result cache and restores every fleet device's
// staleness/cooldown state — a bounced daemon never forces the fleet back
// through full re-extraction. -record-traces additionally writes a
// content-addressed probe trace of every executed extraction under
// <data-dir>/traces; replay them offline with cmd/vgxreplay.
//
//	vgxd -addr :8080 -data-dir /var/lib/vgxd -record-traces
//
// With -shards N the daemon runs N complete shard services — each with
// its own worker pool, result cache, twin registry, fleet slice and
// journal (<data-dir>/shard-i) — behind a stateless consistent-hash
// front door serving the same API. Device, session and spec identities
// hash onto the ring; batch and fleet work scatter-gathers; /metrics and
// /v1/query merge per-shard series under a shard label. Changing -shards
// against an existing data dir rebalances only the affected journal
// ranges before serving:
//
//	vgxd -addr :8080 -shards 4 -data-dir /var/lib/vgxd
//
// Quickstart against a running daemon:
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/batch -d '{"table1":true}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"fast","benchmark":6}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"chain","chainSim":{"dots":8,"seed":5}}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/metrics
//	curl -s -X POST localhost:8080/v1/fleet/devices -d '{"id":"lab-a","spec":{"seed":5}}'
//	curl -s -X POST localhost:8080/v1/fleet/devices -d '{"id":"arr-a","chain":{"dots":4,"seed":5}}'
//	curl -s -X POST localhost:8080/v1/fleet/devices/arr-a/recalibrate?pair=1
//	curl -s -X POST localhost:8080/v1/fleet/tick -d '{"advanceS":300,"ticks":12}'
//	curl -s localhost:8080/v1/fleet
//	curl -s localhost:8080/v1/surrogate
//	curl -s -X POST localhost:8080/v1/surrogate/train
//
// Chain jobs ({"kind":"chain"}) decompose an N-dot array into its N−1 pair
// extractions and run them concurrently on the same worker pool; chain
// fleet devices are spot-checked per pair, and a drifted pair is partially
// recalibrated on its own.
//
// A job whose spec sets "surrogate":{"threshold":0.35} probes the device's
// learned digital twin first and escalates only low-confidence points to
// the instrument; twins are journaled with -data-dir (warm-start across
// restarts), listed at GET /v1/surrogate, and retrainable from recorded
// traces via POST /v1/surrogate/train.
//
// Observability: GET /metrics serves the Prometheus text exposition of
// every vgx_* metric family, and the daemon watches itself — a background
// loop (-scrape-interval, default 10s) samples the registry into an
// in-process time-series store (bounded rings, -tsdb-points each) and
// evaluates the SLO alert catalogue over it (-no-alerts to disable).
// Query history at GET /v1/query, the alert board at GET /v1/alerts (on a
// durable daemon alert history survives restart via the journal), and
// grab a flight-recorder bundle — metrics snapshot, recent tsdb windows,
// alerts, span trees, build info, one tar.gz — at GET /debug/bundle.
// Request latency is recorded per route pattern
// (vgx_http_request_seconds{route}); cmd/vgxtop is the terminal dashboard
// over these endpoints:
//
//	curl -s 'localhost:8080/v1/query?fn=rate&series=vgx_service_shed_total&window=60'
//	curl -s localhost:8080/v1/alerts
//	curl -s localhost:8080/debug/bundle > bundle.tar.gz
//	vgxtop -addr localhost:8080
//
// -max-queue-depth sheds load with 429 once that many submissions are
// queued; -pprof mounts the net/http/pprof handlers under /debug/pprof/
// on the same listener:
//
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//	curl -s localhost:8080/debug/pprof/trace?seconds=5 > trace.out
//
// Logs are structured (log/slog): -log-format text (default) or json.
// Every request line carries the request's X-Request-ID (caller-sent or
// generated), the same ID recorded in the job's span tree.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the HTTP server stops
// accepting connections, then the extraction service drains — running jobs
// finish, queued jobs settle as cancelled, sessions close — bounded by
// -draintimeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "extraction worker-pool slots (0 = one per CPU)")
		cache     = flag.Int("cache", 1024, "result-cache capacity in entries")
		drain     = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown bound for connections and running jobs")
		dataDir   = flag.String("data-dir", "", "journal directory: persist cache + fleet state across restarts")
		traces    = flag.Bool("record-traces", false, "record probe traces of every extraction under <data-dir>/traces (requires -data-dir)")
		maxQueue  = flag.Int("max-queue-depth", 0, "shed submissions with 429 once this many are queued for a worker slot (0 = never)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logJobs   = flag.Bool("log-requests", true, "log one structured line per API request")
		scrapeInt = flag.Duration("scrape-interval", 10*time.Second, "metric-scrape cadence into the in-process tsdb (negative disables the loop)")
		tsdbPts   = flag.Int("tsdb-points", 0, "per-series tsdb ring capacity (0 = 512)")
		noAlerts  = flag.Bool("no-alerts", false, "disable the SLO alert rule engine (tsdb keeps scraping)")
		shards    = flag.Int("shards", 1, "in-process shard workers behind the consistent-hash front door (1 = plain single service)")
	)
	flag.Parse()
	logger := newLogger(*logFormat)
	slog.SetDefault(logger)

	base := fastvg.ServiceConfig{
		Workers: *workers, CacheSize: *cache,
		DataDir: *dataDir, RecordTraces: *traces,
		MaxQueueDepth:  *maxQueue,
		ScrapeInterval: *scrapeInt, TSDBPoints: *tsdbPts,
		DisableAlerts: *noAlerts,
	}

	// Sharded mode: N complete shard services behind the consistent-hash
	// router. Each shard journals under <data-dir>/shard-i; a shard-count
	// change against an existing data dir rebalances the affected journal
	// ranges before serving.
	if *shards > 1 {
		cluster, rep, err := fastvg.OpenCluster(fastvg.ClusterConfig{
			Shards: *shards, DataDir: *dataDir, Base: base,
		})
		if err != nil {
			logger.Error("startup failed", "err", err)
			os.Exit(1)
		}
		if rep != nil {
			logger.Info("rebalanced shards", "from", rep.From, "to", rep.To,
				"movedKeys", len(rep.Moved), "movedRecords", rep.Records)
		}
		if *dataDir != "" {
			logger.Info("durable mode", "dataDir", *dataDir, "shards", *shards)
		}
		serve(logger, fastvg.ClusterHandler(cluster), *addr, *drain, *logJobs, *pprofOn, nil,
			func(ctx context.Context) error { return fastvg.CloseCluster(ctx, cluster) })
		return
	}

	svc, err := fastvg.NewService(base)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		logger.Info("durable mode", "dataDir", *dataDir, "recordTraces", *traces)
	}
	handler := fastvg.ServiceHandler(svc)
	serve(logger, handler, *addr, *drain, *logJobs, *pprofOn, svc.InstrumentHTTP, svc.Close)
}

// serve runs the HTTP front end shared by single-service and sharded
// modes: optional pprof mounting, optional access logging, an optional
// outermost instrumentation wrapper (the single service's route-labelled
// latency histograms; the sharded router carries its own metrics), and
// the signal-driven graceful drain.
func serve(logger *slog.Logger, handler http.Handler, addr string, drain time.Duration,
	logJobs, pprofOn bool, instrument func(http.Handler) http.Handler,
	closeFn func(context.Context) error) {
	if pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	if logJobs {
		handler = accessLog(logger, handler)
	}
	// Outermost so the route-labelled latency histogram times the whole
	// stack, access logging included.
	if instrument != nil {
		handler = instrument(handler)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("serving extraction API", "addr", addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		// Stop accepting connections first, then drain the extraction
		// scheduler (running jobs finish, queued jobs are released) and
		// close the instrument sessions.
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
		if err := closeFn(ctx); err != nil {
			logger.Error("drain incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}

// newLogger builds the slog handler for -log-format; unknown formats get
// text with a warning after the logger exists.
func newLogger(format string) *slog.Logger {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil))
	default:
		l := slog.New(slog.NewTextHandler(os.Stderr, nil))
		l.Warn("unknown -log-format, using text", "format", format)
		return l
	}
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// accessLog logs one structured line per request: method, path, status,
// duration and the request ID the service echoed (X-Request-ID).
func accessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"durMs", float64(time.Since(start).Microseconds())/1000,
			"reqID", sw.Header().Get("X-Request-ID"),
		)
	})
}
