// Command vgxd is the virtual gate extraction daemon: it serves the
// extraction service's JSON API over HTTP, scheduling jobs on a bounded
// worker pool and deduplicating identical requests through the result cache.
//
//	vgxd -addr :8080 -workers 8 -cache 2048
//
// With -data-dir the daemon is durable: cacheable results and fleet
// calibration state are journaled (internal/store) as they happen, and a
// restart warm-starts the result cache and restores every fleet device's
// staleness/cooldown state — a bounced daemon never forces the fleet back
// through full re-extraction. -record-traces additionally writes a
// content-addressed probe trace of every executed extraction under
// <data-dir>/traces; replay them offline with cmd/vgxreplay.
//
//	vgxd -addr :8080 -data-dir /var/lib/vgxd -record-traces
//
// Quickstart against a running daemon:
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/batch -d '{"table1":true}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"fast","benchmark":6}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"chain","chainSim":{"dots":8,"seed":5}}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/fleet/devices -d '{"id":"lab-a","spec":{"seed":5}}'
//	curl -s -X POST localhost:8080/v1/fleet/devices -d '{"id":"arr-a","chain":{"dots":4,"seed":5}}'
//	curl -s -X POST localhost:8080/v1/fleet/devices/arr-a/recalibrate?pair=1
//	curl -s -X POST localhost:8080/v1/fleet/tick -d '{"advanceS":300,"ticks":12}'
//	curl -s localhost:8080/v1/fleet
//	curl -s localhost:8080/v1/surrogate
//	curl -s -X POST localhost:8080/v1/surrogate/train
//
// Chain jobs ({"kind":"chain"}) decompose an N-dot array into its N−1 pair
// extractions and run them concurrently on the same worker pool; chain
// fleet devices are spot-checked per pair, and a drifted pair is partially
// recalibrated on its own.
//
// A job whose spec sets "surrogate":{"threshold":0.35} probes the device's
// learned digital twin first and escalates only low-confidence points to
// the instrument; twins are journaled with -data-dir (warm-start across
// restarts), listed at GET /v1/surrogate, and retrainable from recorded
// traces via POST /v1/surrogate/train.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the HTTP server stops
// accepting connections, then the extraction service drains — running jobs
// finish, queued jobs settle as cancelled, sessions close — bounded by
// -draintimeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "extraction worker-pool slots (0 = one per CPU)")
		cache   = flag.Int("cache", 1024, "result-cache capacity in entries")
		drain   = flag.Duration("draintimeout", 30*time.Second, "graceful-shutdown bound for connections and running jobs")
		dataDir = flag.String("data-dir", "", "journal directory: persist cache + fleet state across restarts")
		traces  = flag.Bool("record-traces", false, "record probe traces of every extraction under <data-dir>/traces (requires -data-dir)")
	)
	flag.Parse()

	svc, err := fastvg.NewService(fastvg.ServiceConfig{
		Workers: *workers, CacheSize: *cache,
		DataDir: *dataDir, RecordTraces: *traces,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		log.Printf("vgxd: durable: journaling to %s (traces: %v)", *dataDir, *traces)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           fastvg.ServiceHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("vgxd: serving extraction API on %s", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("vgxd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting connections first, then drain the extraction
		// scheduler (running jobs finish, queued jobs are released) and
		// close the instrument sessions.
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		if err := svc.Close(ctx); err != nil {
			log.Printf("vgxd: drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Print("vgxd: drained cleanly")
	}
}
