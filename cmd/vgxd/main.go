// Command vgxd is the virtual gate extraction daemon: it serves the
// extraction service's JSON API over HTTP, scheduling jobs on a bounded
// worker pool and deduplicating identical requests through the result cache.
//
//	vgxd -addr :8080 -workers 8 -cache 2048
//
// Quickstart against a running daemon:
//
//	curl -s localhost:8080/v1/benchmarks
//	curl -s -X POST localhost:8080/v1/batch -d '{"table1":true}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"kind":"fast","benchmark":6}'
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "extraction worker-pool slots (0 = one per CPU)")
		cache   = flag.Int("cache", 1024, "result-cache capacity in entries")
	)
	flag.Parse()

	svc, err := fastvg.NewService(fastvg.ServiceConfig{Workers: *workers, CacheSize: *cache})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           fastvg.ServiceHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("vgxd: serving extraction API on %s", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("vgxd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
	}
}
