// Command vgxtop is the terminal dashboard over a running vgxd: it polls
// the daemon's observability endpoints — GET /v1/query (the in-process
// tsdb), GET /v1/alerts (the SLO rule board) and GET /v1/healthz — and
// renders one refreshing screen of throughput, latency quantiles, system
// gauges and firing alerts. No scrape infrastructure, no external
// time-series database: the daemon retains its own history and vgxtop
// just asks for it.
//
//	vgxtop -addr localhost:8080
//	vgxtop -addr localhost:8080 -interval 5s -window 300
//	vgxtop -addr localhost:8080 -once        # one plain snapshot, no ANSI
//
// Against a sharded daemon (vgxd -shards N) the router's /v1/query
// returns every shard's series under a shard label; vgxtop folds them
// into one fleet view — rates sum across shards, gauges and quantiles
// show the worst shard — and the header reports down shards. -shard N
// pins the dashboard to one shard's verbatim series instead:
//
//	vgxtop -addr localhost:8080 -shard 2
//
// Latency columns are histogram-quantile estimates over the lookback
// window (linear interpolation within the fixed buckets, the same
// estimator the alert rules use). Rates are per-second increases across
// the window.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "vgxd address (host:port or full URL)")
		interval = flag.Duration("interval", 2*time.Second, "refresh cadence")
		window   = flag.Float64("window", 60, "lookback window in seconds for rates and quantiles")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
		shardSel = flag.Int("shard", -1, "pin queries to one shard of a sharded daemon (-1 = fleet view)")
	)
	flag.Parse()
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &client{base: base, http: &http.Client{Timeout: 5 * time.Second}, shard: *shardSel}

	for {
		screen, err := render(c, *window)
		if *once {
			if err != nil {
				fmt.Fprintf(os.Stderr, "vgxtop: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(screen)
			return
		}
		// Clear + home, then the frame; errors render in-frame so a daemon
		// restart shows up as a banner instead of killing the dashboard.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("vgxtop: %s — %v (retrying)\n", base, err)
		} else {
			fmt.Print(screen)
		}
		time.Sleep(*interval)
	}
}

type client struct {
	base  string
	http  *http.Client
	shard int // >= 0 pins /v1/query to one shard of a sharded router
}

// getJSON fetches one endpoint into v.
func (c *client) getJSON(path string, v any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// queryResult mirrors the tsdb Result JSON shape; null values decode as
// NaN through the pointer.
type queryResult struct {
	AtS    float64 `json:"atS"`
	Values []struct {
		Series string   `json:"series"`
		Value  *float64 `json:"value"`
	} `json:"values"`
}

// query runs one instant query; missing series yield an empty map.
// Against a sharded router the same logical series comes back once per
// shard under a shard label; the shard label is stripped and the values
// fold — rates and sums add across shards, everything else keeps the
// worst (max) shard, which is what a one-line dashboard wants from
// saturation, staleness and latency quantiles.
func (c *client) query(fn, series string, windowS, q float64) (map[string]float64, float64, error) {
	v := url.Values{"fn": {fn}, "series": {series}}
	if windowS > 0 {
		v.Set("window", fmt.Sprintf("%g", windowS))
	}
	if fn == "quantile" {
		v.Set("q", fmt.Sprintf("%g", q))
	}
	if c.shard >= 0 {
		v.Set("shard", fmt.Sprintf("%d", c.shard))
	}
	var res queryResult
	if err := c.getJSON("/v1/query?"+v.Encode(), &res); err != nil {
		return nil, 0, err
	}
	sum := fn == "rate" || fn == "sum"
	out := make(map[string]float64, len(res.Values))
	for _, sv := range res.Values {
		val := math.NaN()
		if sv.Value != nil {
			val = *sv.Value
		}
		key := labelOf(stripShardLabel(sv.Series))
		prev, seen := out[key]
		switch {
		case !seen || math.IsNaN(prev):
			out[key] = val
		case math.IsNaN(val):
			// keep prev
		case sum:
			out[key] = prev + val
		case val > prev:
			out[key] = val
		}
	}
	return out, res.AtS, nil
}

// stripShardLabel removes a shard="..." pair from a series signature so
// per-shard copies of one logical series fold onto the same key.
func stripShardLabel(series string) string {
	i := strings.Index(series, `shard="`)
	if i < 0 {
		return series
	}
	j := strings.IndexByte(series[i+len(`shard="`):], '"')
	if j < 0 {
		return series
	}
	end := i + len(`shard="`) + j + 1
	switch {
	case end < len(series) && series[end] == ',':
		end++ // shard="0",kind=... → drop the comma too
	case i > 0 && series[i-1] == ',':
		i-- // kind=...,shard="0" → drop the leading comma
	}
	out := series[:i] + series[end:]
	return strings.TrimSuffix(out, "{}") // only label was shard
}

// labelOf extracts the first label value from a series key, or "" for a
// bare series — `vgx_service_jobs_total{kind="fast"}` → "fast".
func labelOf(series string) string {
	i := strings.IndexByte(series, '"')
	if i < 0 {
		return ""
	}
	j := strings.IndexByte(series[i+1:], '"')
	if j < 0 {
		return ""
	}
	return series[i+1 : i+1+j]
}

// scalar collapses a single-series query to one number.
func (c *client) scalar(fn, series string, windowS float64) float64 {
	m, _, err := c.query(fn, series, windowS, 0)
	if err != nil {
		return math.NaN()
	}
	for _, v := range m {
		return v
	}
	return math.NaN()
}

type alertBoard struct {
	Alerts []struct {
		Rule struct {
			Name     string  `json:"name"`
			Severity string  `json:"severity"`
			ForS     float64 `json:"forS"`
		} `json:"rule"`
		State  string   `json:"state"`
		Value  *float64 `json:"value"`
		SinceS float64  `json:"sinceS"`
	} `json:"alerts"`
	Firing []string `json:"firing"`
}

type health struct {
	OK       bool    `json:"ok"`
	UptimeS  float64 `json:"uptimeS"`
	Workers  int     `json:"workers"`
	Running  int     `json:"running"`
	Sessions int     `json:"sessions"`
	Fleet    int     `json:"fleet"`
	// Sharded-router extras (absent from a single service).
	Shards int   `json:"shards,omitempty"`
	Down   []int `json:"down,omitempty"`
}

// render builds one dashboard frame.
func render(c *client, window float64) (string, error) {
	var h health
	if err := c.getJSON("/v1/healthz", &h); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "vgxd %s  up %s  workers %d  running %d  sessions %d  fleet %d",
		c.base, fmtDur(h.UptimeS), h.Workers, h.Running, h.Sessions, h.Fleet)
	if h.Shards > 0 {
		fmt.Fprintf(&b, "  shards %d", h.Shards)
		if len(h.Down) > 0 {
			fmt.Fprintf(&b, "  DOWN %v", h.Down)
		}
		if c.shard >= 0 {
			fmt.Fprintf(&b, "  [viewing shard %d]", c.shard)
		}
	}
	b.WriteString("\n")

	// Alert board first: the reason to be looking at a dashboard.
	var ab alertBoard
	if err := c.getJSON("/v1/alerts", &ab); err == nil {
		if len(ab.Firing) > 0 {
			fmt.Fprintf(&b, "\nALERTS FIRING: %s\n", strings.Join(ab.Firing, ", "))
		} else {
			fmt.Fprintf(&b, "\nalerts: all %d rules quiet\n", len(ab.Alerts))
		}
		for _, a := range ab.Alerts {
			if a.State == "inactive" {
				continue
			}
			val := "-"
			if a.Value != nil {
				val = fmt.Sprintf("%.3g", *a.Value)
			}
			fmt.Fprintf(&b, "  [%-7s] %-28s %-8s value=%s since t=%.0fs\n",
				a.Rule.Severity, a.Rule.Name, a.State, val, a.SinceS)
		}
	}

	// Per-kind throughput and latency: rate + p50/p99 over the window.
	rates, atS, err := c.query("rate", "vgx_service_jobs_total", window, 0)
	if err != nil {
		return "", err
	}
	p50, _, _ := c.query("quantile", "vgx_service_job_seconds", window, 0.50)
	p99, _, _ := c.query("quantile", "vgx_service_job_seconds", window, 0.99)
	kinds := make([]string, 0, len(rates))
	for k := range rates {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(&b, "\njobs (last %.0fs)            rate/s      p50        p99\n", window)
	if len(kinds) == 0 {
		fmt.Fprintf(&b, "  (no job history in window)\n")
	}
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-24s %8s  %9s  %9s\n",
			k, fmtRate(rates[k]), fmtSecs(p50[k]), fmtSecs(p99[k]))
	}

	fmt.Fprintf(&b, "\nsystem  inflight %s  saturation %s  shed/s %s  cachehit/s %s  staleness %s\n",
		fmtNum(c.scalar("last", "vgx_service_inflight", 0)),
		fmtNum(c.scalar("last", "vgx_sched_saturation", 0)),
		fmtRate(c.scalar("rate", "vgx_service_shed_total", window)),
		fmtRate(c.scalar("rate", "vgx_service_cache_hits_total", window)),
		fmtNum(c.scalar("last", "vgx_fleet_staleness_worst", 0)))
	fmt.Fprintf(&b, "tsdb    series %s  points %s  scrapes %s  (scrape clock t=%.1fs)\n",
		fmtNum(c.scalar("last", "vgx_tsdb_series", 0)),
		fmtNum(c.scalar("last", "vgx_tsdb_points", 0)),
		fmtNum(c.scalar("last", "vgx_tsdb_scrapes", 0)), atS)
	return b.String(), nil
}

func fmtDur(s float64) string {
	if math.IsNaN(s) {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Truncate(time.Second).String()
}

func fmtNum(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3g", v)
}

func fmtRate(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

func fmtSecs(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v < 0.001:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	}
	return fmt.Sprintf("%.2fs", v)
}
