// Command vgxfleet simulates a day of fleet-calibration traffic: it
// registers a heterogeneous fleet of drifting simulated devices with the
// fleet manager — double dots, plus N-dot chain arrays when -chains is set —
// advances a virtual clock tick by tick — freshness spot-checks, per-pair
// staleness scoring, budget-admitted re-extractions (a chain device with one
// drifted pair is partially recalibrated: only that pair is re-extracted) —
// and prints a summary of what the day cost.
//
//	vgxfleet -devices 16 -day 86400 -tick 300 -budget 180000 -seed 1
//	vgxfleet -devices 8 -chains 4 -chain-dots 8 -day 86400
//	vgxfleet -devices 16 -surrogate 0.35 -day 86400
//
// With -surrogate set, every pair probes its learned digital twin
// (internal/surrogate) first and only escalates low-confidence points to the
// live device; the summary's "saved" column counts probes the twins served.
//
// The summary is deterministic for a fixed seed: byte-identical across runs
// and across -workers values (per-pair work fans out over the pool, but
// every scheduling decision is made serially in (device ID, pair) order).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/sched"
)

func main() {
	var (
		devices   = flag.Int("devices", 16, "double-dot fleet size (profiles cycle quiet/standard/wandering/jumpy)")
		chains    = flag.Int("chains", 0, "additional N-dot chain devices (per-pair staleness, partial recalibration)")
		chainDots = flag.Int("chain-dots", 4, "dots per chain device")
		day       = flag.Float64("day", 86400, "virtual run length, seconds")
		tick      = flag.Float64("tick", 300, "virtual tick, seconds")
		check     = flag.Float64("check", 1800, "per-device spot-check interval, seconds")
		budget    = flag.Int("budget", 180000, "fleet probe budget per day (0 = unlimited)")
		cooldown  = flag.Float64("cooldown", 1800, "per-device recalibration cooldown, seconds")
		surrogate = flag.Float64("surrogate", 0, "surrogate confidence threshold (0 = all probes live)")
		infoGain  = flag.Bool("infogain", false, "guide scheduled recalibrations with the active infogain scheduler (warm priors from the last geometry)")
		seed      = flag.Uint64("seed", 1, "fleet seed (device geometry, noise and drift)")
		workers   = flag.Int("workers", 0, "worker-pool slots (0 = one per CPU); does not affect results")
		asJSON    = flag.Bool("json", false, "emit the summary as JSON")
		verbose   = flag.Bool("v", false, "log every tick that checked or recalibrated something")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()
	logger := newLogger(*logFormat)
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	pol := fleet.Policy{
		CheckInterval:      *check,
		Cooldown:           *cooldown,
		Budget:             *budget,
		BudgetWindow:       *day,
		SurrogateThreshold: *surrogate,
		InfoGain:           *infoGain,
	}
	mgr := fleet.New(sched.New(*workers), pol)
	cfgs, err := fleet.DefaultFleet(*devices, *seed)
	if err != nil {
		fatal("vgxfleet", err)
	}
	cfgs = append(cfgs, fleet.DefaultChainFleet(*chains, *chainDots, *seed)...)
	for _, cfg := range cfgs {
		if _, err := mgr.Register(cfg); err != nil {
			fatal("vgxfleet", err)
		}
	}

	ctx := context.Background()
	var sum *fleet.Summary
	if *verbose {
		ticks := fleet.NumTicks(*day, *tick)
		for i := 0; i < ticks; i++ {
			rep, err := mgr.Tick(ctx, *tick)
			if err != nil {
				fatal("vgxfleet", err)
			}
			if len(rep.Checked) > 0 || len(rep.Recalibrated) > 0 {
				fmt.Printf("t=%7.0fs checked=%d recal=%v probes=%d+%d skipped=%d\n",
					rep.Now, len(rep.Checked), rep.Recalibrated,
					rep.CheckProbes, rep.RecalProbes, rep.SkippedBudget)
			}
		}
		sum = mgr.Summarize(ticks, *tick)
	} else {
		sum, err = mgr.Run(ctx, *day, *tick)
		if err != nil {
			fatal("vgxfleet", err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal("vgxfleet", err)
		}
		return
	}
	printSummary(sum)
}

func printSummary(s *fleet.Summary) {
	fmt.Printf("vgxfleet: %d devices (%d pairs), %.0fs virtual in %.0fs ticks (%d ticks)\n\n",
		s.DeviceCount, s.PairCount, s.VirtualS, s.TickS, s.Ticks)
	fmt.Printf("%-16s %-12s %9s %9s %6s %6s %6s %5s %8s %8s\n",
		"device", "state", "stale", "worst", "cals", "forced", "checks", "lost", "probes", "saved")
	for _, d := range s.Devices {
		fmt.Printf("%-16s %-12s %9.3f %9.3f %6d %6d %6d %5d %8d %8d\n",
			d.ID, d.State, d.Staleness, d.MaxStaleness,
			d.Calibrations, d.Forced, d.Checks, d.LostEvents, d.Probes, d.ProbesSaved)
		if len(d.Pairs) > 1 {
			for _, p := range d.Pairs {
				fmt.Printf("  pair %-11d %-12s %9.3f %9.3f %6d %6d %6d %5d %8d %8d\n",
					p.Pair, p.State, p.Staleness, p.MaxStaleness,
					p.Calibrations, p.Forced, p.Checks, p.LostEvents, p.Probes, p.ProbesSaved)
			}
		}
	}
	fmt.Printf("\nfleet: checks=%d calibrations=%d recalibrations=%d (partial=%d) forced=%d failed=%d linesLost=%d\n",
		s.Checks, s.Calibrations, s.Recalibrations, s.PartialRecals, s.Forced, s.FailedCals, s.LostEvents)
	budget := "unlimited"
	if s.Budget > 0 {
		budget = fmt.Sprintf("%d/window", s.Budget)
	}
	fmt.Printf("probes: spent=%d budget=%s maxWindow=%d deferredForBudget=%d\n",
		s.ProbesSpent, budget, s.MaxWindowProbes, s.SkippedBudget)
	if s.ProbesSaved > 0 {
		total := s.ProbesSpent + s.ProbesSaved
		fmt.Printf("surrogate: saved=%d of %d probes (%.1f%%) served by twins\n",
			s.ProbesSaved, total, 100*float64(s.ProbesSaved)/float64(total))
	}
	fmt.Printf("worst finite staleness observed: %.3f\n", s.WorstStaleness)
}

// newLogger builds the slog handler for -log-format.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}
