// Command csdview renders a charge stability diagram in the terminal: either
// a benchmark from the synthetic suite or a PGM file produced by qflowgen.
//
// Usage:
//
//	csdview -csd 6 [-width 100]
//	csdview -file qflow_data/csd-06.pgm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/fastvg/fastvg/internal/evalx"
	"github.com/fastvg/fastvg/internal/grid"
)

func main() {
	csdIdx := flag.Int("csd", 0, "benchmark CSD index (1-12)")
	file := flag.String("file", "", "PGM file to render instead")
	width := flag.Int("width", 100, "maximum terminal columns")
	workers := flag.Int("workers", 0, "CSD render workers (0 = one per CPU, 1 = serial; output is identical)")
	flag.Parse()

	var g *grid.Grid
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err = grid.ReadPGM(f)
		if err != nil {
			log.Fatal(err)
		}
	case *csdIdx != 0:
		b, err := evalx.ByIndex(*csdIdx)
		if err != nil {
			log.Fatal(err)
		}
		g, err = b.GenerateParallel(*workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("benchmark %s (%dx%d): steep %.3f, shallow %.4f, triple point (%.1f, %.1f) mV\n\n",
			b.Name, b.Size, b.Size, b.Truth.SteepSlope, b.Truth.ShallowSlope,
			b.Truth.TripleV1, b.Truth.TripleV2)
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Print(g.ASCII(*width))
}
