// Command figures regenerates the paper's figures from the simulation and
// extraction pipelines:
//
//	fig 1 — schematic layout of the quadruple-dot device (text; the paper's
//	        figure is an SEM micrograph, see DESIGN.md)
//	fig 2 — example double-dot charge stability diagram with region labels
//	fig 3 — CSD before and after the virtual-gate warp
//	fig 4 — the critical triangular region with anchor points
//	fig 5 — row-/column-major sweep walks on a small grid
//	fig 6 — post-processing stages (raw → filtered → fit)
//	fig 7 — probe maps of benchmarks CSD 6 and CSD 10
//
// Usage: figures [-fig N] [-out dir]   (fig 0 = all)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/evalx"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/postproc"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/sweep"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

func main() {
	figNum := flag.Int("fig", 0, "figure to regenerate (1-7; 0 = all)")
	outDir := flag.String("out", "figures_out", "output directory")
	flag.IntVar(&renderWorkers, "workers", 0, "CSD render workers (0 = one per CPU, 1 = serial; figures are identical)")
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	gens := map[int]func(string) error{
		1: fig1, 2: fig2, 3: fig3, 4: fig4, 5: fig5, 6: fig6, 7: fig7,
	}
	run := func(n int) {
		if err := gens[n](*outDir); err != nil {
			log.Fatalf("figure %d: %v", n, err)
		}
		fmt.Printf("figure %d written to %s/\n", n, *outDir)
	}
	if *figNum != 0 {
		if _, ok := gens[*figNum]; !ok {
			log.Fatalf("unknown figure %d", *figNum)
		}
		run(*figNum)
		return
	}
	for n := 1; n <= 7; n++ {
		run(n)
	}
}

// fig1 emits a schematic of the simulated quadruple-dot layout (the paper's
// Figure 1 is an SEM micrograph of the physical device).
func fig1(dir string) error {
	const schematic = `Quadruple-dot device layout (schematic; cf. paper Figure 1a)

   B1   P1   B2   P2   B3   P3   B4   P4   B5
  ====|----|====|----|====|----|====|----|====
 S     (1)      (2)      (3)      (4)       D     <- dot side
  -----------------------------------------------
        [C1]                       [C2]           <- charge sensors

S/D    source and drain reservoirs
Pn     plunger gates: set the potential of dot (n)
Bn     barrier gates: set the tunnel couplings
Cn     single-dot charge sensors; their conductance steps when any
       nearby dot's electron number changes

Cross-section (cf. Figure 1b): dots form in the strained Si quantum well
between Si0.7Ge0.3 barriers; gate voltages shape the potential landscape
that traps one electron under each plunger.
`
	return os.WriteFile(filepath.Join(dir, "fig1_device.txt"), []byte(schematic), 0o644)
}

// renderWorkers is the -workers flag: the worker budget of every full-CSD
// render. Renders are bit-identical at any setting, so figures never depend
// on it.
var renderWorkers int

// generate renders a benchmark CSD with the configured worker budget.
func generate(b *qflow.Benchmark) (*grid.Grid, error) {
	return b.GenerateParallel(renderWorkers)
}

// cleanBenchmark returns the clean 100×100 benchmark (CSD 6) used by several
// figures.
func cleanBenchmark() (*qflow.Benchmark, error) { return evalx.ByIndex(6) }

// fig2 renders an example CSD with charge-state region labels.
func fig2(dir string) error {
	b, err := cleanBenchmark()
	if err != nil {
		return err
	}
	g, err := generate(b)
	if err != nil {
		return err
	}
	if err := writePNG(g, filepath.Join(dir, "fig2_csd.png")); err != nil {
		return err
	}
	txt := "Example charge stability diagram (benchmark CSD 6)\n" +
		"Regions (bottom-left origin): (0,0) lower-left, (1,0) lower-right,\n" +
		"(0,1) upper-left, (1,1) upper-right. Steep line = dot 1 addition,\n" +
		"shallow line = dot 2 addition.\n\n" + g.ASCII(80)
	return os.WriteFile(filepath.Join(dir, "fig2_csd.txt"), []byte(txt), 0o644)
}

// fig3 renders the CSD before and after the virtualization warp.
func fig3(dir string) error {
	b, err := cleanBenchmark()
	if err != nil {
		return err
	}
	inst, err := b.Instrument()
	if err != nil {
		return err
	}
	res, err := core.Extract(csd.PixelSource{Src: inst, Win: b.Window}, b.Window, core.Config{})
	if err != nil {
		return err
	}
	g, err := generate(b)
	if err != nil {
		return err
	}
	if err := writePNG(g, filepath.Join(dir, "fig3_original.png")); err != nil {
		return err
	}
	// Pixel-space warp: convert the voltage-space matrix to pixel units
	// (identical for square isotropic windows).
	warped, err := virtualgate.Warp(g, res.Matrix)
	if err != nil {
		return err
	}
	return writePNG(warped, filepath.Join(dir, "fig3_virtualized.png"))
}

// fig4 draws the critical triangular region defined by the anchors.
func fig4(dir string) error {
	b, err := cleanBenchmark()
	if err != nil {
		return err
	}
	inst, err := b.Instrument()
	if err != nil {
		return err
	}
	res, err := core.Extract(csd.PixelSource{Src: inst, Win: b.Window}, b.Window, core.Config{})
	if err != nil {
		return err
	}
	g, err := generate(b)
	if err != nil {
		return err
	}
	bot, left := res.Anchors.Bottom, res.Anchors.Left
	corner := grid.Point{X: bot.X, Y: left.Y}
	var tri []grid.Point
	tri = append(tri, grid.LinePoints(left, corner)...) // top edge
	tri = append(tri, grid.LinePoints(corner, bot)...)  // right edge
	tri = append(tri, grid.LinePoints(bot, left)...)    // hypotenuse
	f, err := os.Create(filepath.Join(dir, "fig4_critical_region.png"))
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WritePNGWithOverlays(f,
		grid.Overlay{Points: tri, R: 255, G: 200},
		grid.Overlay{Points: []grid.Point{bot, left}, R: 255},
	)
}

// fig5 reproduces the small-grid sweep walk illustrations.
func fig5(dir string) error {
	// A 15×15 voltage space like the paper's Figure 5, with lines through
	// (12, 0) and (0, 12).
	src := func(x, y int) float64 {
		fx, fy := float64(x), float64(y)
		c := 2.0
		if fx > 12+fy/(-6) {
			c -= 0.8
		}
		if fy > 12-0.15*fx {
			c -= 0.8
		}
		return c
	}
	left := grid.Point{X: 0, Y: 12}
	bottom := grid.Point{X: 12, Y: 0}
	row, err := sweep.RowSweep(funcSource(src), left, bottom)
	if err != nil {
		return err
	}
	col, err := sweep.ColSweep(funcSource(src), left, bottom)
	if err != nil {
		return err
	}
	render := func(tr sweep.Trace) string {
		marks := map[grid.Point]byte{}
		for _, p := range tr.Probed {
			marks[p] = 'o'
		}
		for _, p := range tr.Chosen {
			marks[p] = '*'
		}
		marks[left] = 'A'
		marks[bottom] = 'A'
		out := ""
		for y := 14; y >= 0; y-- {
			for x := 0; x < 15; x++ {
				if m, ok := marks[grid.Point{X: x, Y: y}]; ok {
					out += string(m) + " "
				} else {
					out += ". "
				}
			}
			out += "\n"
		}
		return out
	}
	txt := "Row-major sweep (A = anchors, o = probed, * = saved transition point):\n\n" +
		render(row) + "\nColumn-major sweep:\n\n" + render(col)
	return os.WriteFile(filepath.Join(dir, "fig5_sweeps.txt"), []byte(txt), 0o644)
}

type funcSource func(x, y int) float64

func (f funcSource) Current(x, y int) float64 { return f(x, y) }

// fig6 renders the post-processing stages on benchmark CSD 6.
func fig6(dir string) error {
	b, err := cleanBenchmark()
	if err != nil {
		return err
	}
	inst, err := b.Instrument()
	if err != nil {
		return err
	}
	res, err := core.Extract(csd.PixelSource{Src: inst, Win: b.Window}, b.Window, core.Config{})
	if err != nil {
		return err
	}
	g, err := generate(b)
	if err != nil {
		return err
	}
	write := func(name string, overlays ...grid.Overlay) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return g.WritePNGWithOverlays(f, overlays...)
	}
	// Stage 1: raw points from both sweeps (row red, column yellow).
	if err := write("fig6_raw.png",
		grid.Overlay{Points: res.RowTrace.Chosen, R: 255},
		grid.Overlay{Points: res.ColTrace.Chosen, R: 255, G: 255},
	); err != nil {
		return err
	}
	// Stage 2: the two filtered sets.
	lowest, leftmost := postproc.FilterSets(res.RawPoints)
	if err := write("fig6_filtered.png",
		grid.Overlay{Points: lowest, R: 255},
		grid.Overlay{Points: leftmost, G: 255},
	); err != nil {
		return err
	}
	// Stage 3: joined result with the fitted 2-piece shape.
	fitLine := append(
		grid.LinePoints(res.Anchors.Bottom, roundPt(res.Knee.X, res.Knee.Y)),
		grid.LinePoints(roundPt(res.Knee.X, res.Knee.Y), res.Anchors.Left)...)
	return write("fig6_fit.png",
		grid.Overlay{Points: res.Points, R: 255, G: 255},
		grid.Overlay{Points: fitLine, R: 0, G: 255, B: 255},
	)
}

func roundPt(x, y float64) grid.Point {
	return grid.Point{X: int(x + 0.5), Y: int(y + 0.5)}
}

// fig7 renders the probe maps of benchmarks 6 and 10.
func fig7(dir string) error {
	for _, idx := range []int{6, 10} {
		b, err := evalx.ByIndex(idx)
		if err != nil {
			return err
		}
		rr, err := evalx.RunFast(b, core.Config{})
		if err != nil {
			return err
		}
		g, err := generate(b)
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("fig7_csd%d.png", idx)))
		if err != nil {
			return err
		}
		err = g.WritePNGWithOverlays(f, grid.Overlay{Points: rr.ProbeMap, R: 255})
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func writePNG(g *grid.Grid, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WritePNG(f)
}
