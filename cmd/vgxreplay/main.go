// Command vgxreplay re-executes recorded extractions offline and verifies
// they reproduce the recorded virtual-gate matrices byte-for-byte.
//
// Two sources, combinable:
//
//   - A probe trace (-trace file, or every trace under <data-dir>/traces):
//     the recorded request runs through the real pipeline code against the
//     recorded (voltages, time, current) samples — zero live-instrument
//     probes. Any divergence (a probe the recording never made, a matrix
//     bit that differs) is a regression in the extraction code or a
//     corrupted trace. Traces of surrogate jobs carry the twin snapshot
//     taken before extraction, so replay rebuilds the same model-first
//     probing — hits, escalations and all — bit for bit.
//
//   - The journal (-data-dir with -journal, default on): every cacheable
//     extraction persisted by a durable vgxd is re-executed from scratch
//     against a fresh simulated instrument and diffed against the journaled
//     result — the regression test that the whole stack is deterministic.
//
// A durable daemon also journals one timing span tree per executed job
// (where the job spent wall-clock and virtual instrument time, per
// pipeline / chain pair / probe batch) and every alert firing/resolved
// transition; -spans prints the recorded trees, -alerts the alert
// history, instead of replaying:
//
//	vgxreplay -data-dir /var/lib/vgxd -spans
//	vgxreplay -data-dir /var/lib/vgxd -alerts
//
// Usage:
//
//	vgxreplay -trace data/traces/0a1b2c….fvgt
//	vgxreplay -data-dir /var/lib/vgxd
//	vgxreplay -data-dir /var/lib/vgxd -journal=false   # traces only
//	vgxreplay -data-dir /var/lib/vgxd -spans           # dump span trees
//	vgxreplay -data-dir /var/lib/vgxd -alerts          # dump alert history
//
// Exit status 1 when any replay mismatches. Run it against a stopped
// daemon's data dir (the journal open may truncate a torn tail, exactly as
// a daemon restart would).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "replay one trace file")
		dataDir   = flag.String("data-dir", "", "replay a daemon data dir: every trace under <dir>/traces, plus the journal")
		journal   = flag.Bool("journal", true, "with -data-dir, also re-execute journaled extractions against fresh instruments")
		workers   = flag.Int("workers", 0, "worker-pool slots for journal re-execution (0 = one per CPU)")
		spans     = flag.Bool("spans", false, "with -data-dir, print the journaled job span trees instead of replaying")
		alerts    = flag.Bool("alerts", false, "with -data-dir, print the journaled alert firing/resolved history instead of replaying")
		asJSON    = flag.Bool("json", false, "emit outcomes as JSON")
		verbose   = flag.Bool("v", false, "print every outcome, not just mismatches")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()
	logger := newLogger(*logFormat)
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	if *tracePath == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "usage: vgxreplay -trace file | -data-dir dir [-journal=false] [-spans]")
		os.Exit(2)
	}

	if *alerts {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "vgxreplay: -alerts requires -data-dir")
			os.Exit(2)
		}
		evs, err := fastvg.LoadAlertHistory(*dataDir)
		if err != nil {
			fatal("loading alert history", err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(evs); err != nil {
				fatal("encoding alert history", err)
			}
			return
		}
		for _, ev := range evs {
			fmt.Printf("t=%-10.1f %-8s %-9s %s (value %g)\n", ev.AtS, ev.State, ev.Severity, ev.Rule, ev.Value)
		}
		fmt.Printf("vgxreplay: %d alert transitions\n", len(evs))
		return
	}

	if *spans {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "vgxreplay: -spans requires -data-dir")
			os.Exit(2)
		}
		recs, err := fastvg.LoadSpans(*dataDir)
		if err != nil {
			fatal("loading spans", err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(recs); err != nil {
				fatal("encoding spans", err)
			}
			return
		}
		for _, r := range recs {
			fmt.Printf("%s\n", r.Hash)
			r.Span.Render(os.Stdout)
		}
		fmt.Printf("vgxreplay: %d span trees\n", len(recs))
		return
	}

	var outs []fastvg.ReplayOutcome
	replayTrace := func(path string) {
		out, err := fastvg.ReplayTrace(path)
		if err != nil {
			logger.Error("trace replay failed", "path", path, "err", err)
			os.Exit(1)
		}
		outs = append(outs, *out)
	}
	if *tracePath != "" {
		replayTrace(*tracePath)
	}
	if *dataDir != "" {
		paths, err := fastvg.ListTraces(filepath.Join(*dataDir, "traces"))
		if err != nil {
			fatal("listing traces", err)
		}
		for _, p := range paths {
			replayTrace(p)
		}
		if *journal {
			jouts, err := fastvg.ReplayJournal(context.Background(), *dataDir, *workers)
			if err != nil {
				fatal("journal replay failed", err)
			}
			outs = append(outs, jouts...)
		}
	}

	matched, mismatched, skipped := 0, 0, 0
	for _, o := range outs {
		switch {
		case o.Skipped:
			skipped++
		case o.Match:
			matched++
		default:
			mismatched++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"outcomes": outs,
			"matched":  matched, "mismatched": mismatched, "skipped": skipped,
		}); err != nil {
			fatal("encoding outcomes", err)
		}
	} else {
		for _, o := range outs {
			kind := string(o.Kind)
			if o.Pair != nil {
				// A chain job's per-pair trace: one file per adjacent pair.
				kind = fmt.Sprintf("%s/%d", o.Kind, *o.Pair)
			}
			switch {
			case o.Skipped:
				if *verbose {
					fmt.Printf("SKIP  %-9s %s (%s)\n", kind, o.Source, o.SkipReason)
				}
			case o.Match:
				if *verbose {
					probes := 0
					if o.Recorded != nil {
						probes = o.Recorded.Probes
					}
					fmt.Printf("OK    %-9s %s probes=%d live=%d\n", kind, o.Source, probes, o.LiveProbes)
				}
			default:
				fmt.Printf("FAIL  %-9s %s\n", kind, o.Source)
				for _, d := range o.Diffs {
					fmt.Printf("      diff: %s\n", d)
				}
				if o.ReplayErr != "" {
					fmt.Printf("      replay: %s\n", o.ReplayErr)
				}
			}
		}
		fmt.Printf("vgxreplay: %d matched, %d mismatched, %d skipped\n", matched, mismatched, skipped)
	}
	if mismatched > 0 {
		os.Exit(1)
	}
}

// newLogger builds the slog handler for -log-format.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}
