// Command vgx runs a virtual gate extraction — fast (the paper's method) or
// baseline (full CSD + Hough) — on either a benchmark from the synthetic
// qflow suite or a freshly simulated device, and prints the result.
//
// Examples:
//
//	vgx -csd 6                 # fast extraction on benchmark CSD 6
//	vgx -csd 6 -method baseline
//	vgx -sim -steep -9 -shallow -0.1 -noise 0.02
//	vgx -csd 10 -probemap probes.png
//	vgx -sim -probemap probes.png   # probe maps work for sim runs too
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	fastvg "github.com/fastvg/fastvg"
	"github.com/fastvg/fastvg/internal/evalx"
	"github.com/fastvg/fastvg/internal/grid"
)

func main() {
	var (
		csdIdx   = flag.Int("csd", 0, "benchmark CSD index (1-12); 0 = use -sim")
		method   = flag.String("method", "fast", "extraction method: fast, baseline, rays, adaptive or infogain")
		sim      = flag.Bool("sim", false, "extract from a freshly simulated device")
		steep    = flag.Float64("steep", -8, "simulated steep-line slope")
		shallow  = flag.Float64("shallow", -0.12, "simulated shallow-line slope")
		noiseAmp = flag.Float64("noise", 0.01, "simulated white-noise sigma")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		pixels   = flag.Int("pixels", 100, "simulated window resolution")
		probeMap = flag.String("probemap", "", "write the probe map PNG to this path (benchmark and sim runs)")
	)
	flag.Parse()

	switch {
	case *csdIdx != 0:
		runBenchmark(*csdIdx, *method, *probeMap)
	case *sim:
		runSim(*method, *steep, *shallow, *noiseAmp, *seed, *pixels, *probeMap)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runBenchmark(idx int, method, probeMap string) {
	b, err := evalx.ByIndex(idx)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := b.Instrument()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s (%dx%d), ground truth: steep %.3f shallow %.4f\n",
		b.Name, b.Size, b.Size, b.Truth.SteepSlope, b.Truth.ShallowSlope)
	ext, err := runMethod(method, inst, b.Window)
	if err != nil {
		log.Fatalf("extraction failed: %v", err)
	}
	report(ext, b.Size*b.Size)
	ok, se, he := evalx.CheckSlopes(ext.SteepSlope, ext.ShallowSlope, b.Truth, evalx.DefaultAngleTolDeg)
	fmt.Printf("vs ground truth: Δsteep %.2f°, Δshallow %.2f° -> %s\n", se, he, passFail(ok))
	if probeMap != "" {
		writeProbeMap(inst, b.Size, probeMap)
	}
}

func runSim(method string, steep, shallow, noiseAmp float64, seed uint64, pixels int, probeMap string) {
	inst, truth, err := fastvg.NewDoubleDotSim(fastvg.DoubleDotSimOptions{
		SteepSlope:   steep,
		ShallowSlope: shallow,
		Pixels:       pixels,
		Noise:        fastvg.NoiseParams{WhiteSigma: noiseAmp, PinkAmp: noiseAmp / 2},
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated device, ground truth: steep %.3f shallow %.4f\n",
		truth.SteepSlope, truth.ShallowSlope)
	// The sim substitutes defaults for zero options, so size everything off
	// the window it actually built rather than the raw -pixels flag.
	win := inst.Window()
	ext, err := runMethod(method, inst, win)
	if err != nil {
		log.Fatalf("extraction failed: %v", err)
	}
	report(ext, win.Cols*win.Rows)
	if probeMap != "" {
		writeProbeMap(inst, win.Cols, probeMap)
	}
}

// runMethod dispatches to the selected extraction pipeline.
func runMethod(method string, inst fastvg.Instrument, win fastvg.Window) (*fastvg.Extraction, error) {
	switch method {
	case "fast":
		return fastvg.Extract(inst, win, fastvg.Options{})
	case "baseline":
		return fastvg.ExtractBaseline(inst, win, fastvg.BaselineOptions{})
	case "rays":
		return fastvg.ExtractRays(inst, win, fastvg.RayOptions{})
	case "adaptive":
		return fastvg.ExtractAdaptive(inst, win, fastvg.AdaptiveOptions{})
	case "infogain":
		return fastvg.ExtractInfoGain(inst, win, fastvg.InfoGainOptions{})
	default:
		log.Fatalf("unknown method %q", method)
		return nil, nil
	}
}

func report(ext *fastvg.Extraction, totalPixels int) {
	fmt.Printf("extracted:  steep %.3f  shallow %.4f\n", ext.SteepSlope, ext.ShallowSlope)
	fmt.Printf("matrix:     [1 %.4f; %.4f 1]\n", ext.Matrix.A12(), ext.Matrix.A21())
	fmt.Printf("triple pt:  (%.2f mV, %.2f mV)\n", ext.TripleV1, ext.TripleV2)
	fmt.Printf("probes:     %d / %d (%.2f%%), experiment time %s\n",
		ext.Probes, totalPixels, 100*float64(ext.Probes)/float64(totalPixels), ext.ExperimentTime)
}

// probeMapper is satisfied by both benchmark replay instruments
// (*device.DatasetInstrument) and live sims (*fastvg.SimInstrument).
type probeMapper interface {
	ProbeMap() []grid.Point
}

func writeProbeMap(inst fastvg.Instrument, size int, path string) {
	pm, ok := inst.(probeMapper)
	if !ok {
		log.Printf("probe map not available for this instrument")
		return
	}
	g := grid.New(size, size)
	for _, p := range pm.ProbeMap() {
		g.Set(p.X, p.Y, 1)
	}
	if err := g.WritePNGFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe map written to %s\n", path)
}

func passFail(ok bool) string {
	if ok {
		return "Success"
	}
	return "Fail"
}
