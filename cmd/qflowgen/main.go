// Command qflowgen materialises the synthetic qflow benchmark suite to disk:
// suite.json (full provenance: device, sensor, noise parameters and seeds)
// plus one PGM preview and one CSV per benchmark.
//
// Usage: qflowgen [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/fastvg/fastvg/internal/qflow"
)

func main() {
	outDir := flag.String("out", "qflow_data", "output directory")
	flag.Parse()
	suite, err := qflow.Suite()
	if err != nil {
		log.Fatal(err)
	}
	if err := qflow.Materialize(*outDir, suite); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s/ (suite.json + per-benchmark .pgm/.csv)\n",
		len(suite), *outDir)
}
