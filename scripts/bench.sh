#!/usr/bin/env bash
# bench.sh — run the probe-path benchmark trajectory and emit
# BENCH_probe.json, then the fleet-recalibration benchmark (BENCH_fleet.json),
# the durable-store / trace-replay benchmarks (BENCH_store.json), the
# n-dot chain extraction benchmarks (BENCH_chain.json), the surrogate
# digital-twin benchmarks (BENCH_surrogate.json), the active-probing
# scheduler benchmarks (BENCH_infogain.json), the telemetry overhead
# benchmarks (BENCH_telemetry.json), the observability-store benchmarks
# (BENCH_obs.json) and the sharded-serving benchmarks (BENCH_shard.json).
#
# Usage:
#   scripts/bench.sh [-o BENCH_probe.json] [-f BENCH_fleet.json] [-t benchtime]
#
# The "after" block is measured on this machine by running the benchmarks in
# internal/device (BenchmarkProbe*, BenchmarkGridRender*). The "before"
# block records the pre-batch-path numbers; it is carried over from an
# existing output file when present, so re-running keeps the original
# baseline. To re-baseline (e.g. on new hardware), check out the commit
# before the batch-probing PR, run the equivalent scalar benchmarks there,
# and edit the file — or set BENCH_BEFORE_JSON to a JSON object to splice in.
set -euo pipefail

out="BENCH_probe.json"
fleet_out="BENCH_fleet.json"
benchtime="2s"
while getopts "o:f:t:" opt; do
  case "$opt" in
    o) out="$OPTARG" ;;
    f) fleet_out="$OPTARG" ;;
    t) benchtime="$OPTARG" ;;
    *) echo "usage: $0 [-o file] [-f file] [-t benchtime]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

before=""
if [ -n "${BENCH_BEFORE_JSON:-}" ]; then
  before="$BENCH_BEFORE_JSON"
elif [ -f "$out" ]; then
  # Preserve the committed baseline block (everything inside "before": {...}).
  before=$(awk '/"before": \{/{f=1;next} f&&/^  \}/{exit} f' "$out")
fi
if [ -z "$before" ]; then
  before='    "note": "no baseline recorded — see header of scripts/bench.sh"'
fi

raw=$(go test ./internal/device/ -run '^$' -bench 'Probe|GridRender' \
  -benchmem -benchtime "$benchtime" 2>&1)
echo "$raw"

# Columns: name  iters  ns/op "ns/op"  B/op "B/op"  allocs "allocs/op"
field() { echo "$raw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $3; exit}'; }
allocs() { echo "$raw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $7; exit}'; }
ms() { awk -v ns="$1" 'BEGIN {printf "%.4f", ns / 1e6}'; }

cpu=$(echo "$raw" | awk -F': ' '/^cpu:/{print $2; exit}')
probe_scalar=$(field ProbeScalar)
probe_batch=$(field ProbeBatch)
probe_hit=$(field ProbeMemoHit)
render_scalar=$(field GridRenderScalar)
render_batch=$(field GridRenderBatch)
render_noisy=$(field GridRenderNoisy)
render_dataset=$(field GridRenderDataset)

cat > "$out" <<JSON
{
  "schema": "fastvg-bench-probe/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "gomaxprocs": $(nproc),
  "benchtime": "$benchtime",
  "units": {
    "probe_*_ns": "nanoseconds per probe",
    "probe_*_allocs_per_op": "heap allocations per probe",
    "grid_render_*_ms": "milliseconds per full 100x100 window render"
  },
  "before": {
$before
  },
  "after": {
    "probe_scalar_ns": $probe_scalar,
    "probe_scalar_allocs_per_op": $(allocs ProbeScalar),
    "probe_batch_ns": $probe_batch,
    "probe_batch_allocs_per_op": $(allocs ProbeBatch),
    "probe_memo_hit_ns": $probe_hit,
    "grid_render_scalar_ms": $(ms "$render_scalar"),
    "grid_render_batch_ms": $(ms "$render_batch"),
    "grid_render_noisy_ms": $(ms "$render_noisy"),
    "grid_render_dataset_ms": $(ms "$render_dataset")
  }
}
JSON
echo "wrote $out"
# ---- fleet calibration loop → BENCH_fleet.json ----------------------------
# BenchmarkFleetRecalibration runs an 8-device heterogeneous fleet through
# four virtual hours per iteration and reports the loop's economics as
# custom metrics: probes per recalibration and the steady-state staleness
# score the policy holds the fleet at.
fraw=$(go test ./internal/fleet/ -run '^$' -bench 'FleetRecalibration' \
  -benchtime "$benchtime" 2>&1)
echo "$fraw"

fline=$(echo "$fraw" | awk '$1 ~ /^BenchmarkFleetRecalibration(-|$)/ {print; exit}')
fmetric() { echo "$fline" | awk -v u="$1" '{for (i = 2; i < NF; i++) if ($(i+1) == u) {print $i; exit}}'; }

probes_per_recal=$(fmetric "probes/recal")
steady_staleness=$(fmetric "staleness")
fleet_ns=$(fmetric "ns/op")

cat > "$fleet_out" <<JSON
{
  "schema": "fastvg-bench-fleet/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "gomaxprocs": $(nproc),
  "benchtime": "$benchtime",
  "scenario": "8 heterogeneous devices (quiet/standard/wandering/jumpy), 4 virtual hours per iteration, 1800 s check interval, default policy",
  "units": {
    "probes_per_recal": "instrument probes per successful matrix refresh, spot-checks amortised in",
    "steady_staleness": "mean finite device staleness at end of run (1.0 = drift tolerance)",
    "sim_ms_per_virtual_day": "wall milliseconds to simulate one device-day of the loop"
  },
  "after": {
    "probes_per_recal": ${probes_per_recal:-null},
    "steady_staleness": ${steady_staleness:-null},
    "sim_ms_per_virtual_day": $(awk -v ns="${fleet_ns:-0}" 'BEGIN {printf "%.2f", ns / 1e6 / (8 * 4 / 24)}')
  }
}
JSON
echo "wrote $fleet_out"
# ---- durable store + trace replay → BENCH_store.json ----------------------
# BenchmarkJournalAppend measures the per-record journal append (one write
# syscall, CRC framing); BenchmarkWarmStartLoad the full Open of a journal
# holding 1024 persisted results; BenchmarkExtractionLive/Replay the same
# fast extraction against a live simulated instrument vs re-executed from
# its recorded probe trace. Replay wall time includes reading and decoding
# the trace file; the speedup is wall-clock only — on hardware a live
# extraction additionally pays seconds of real dwell that replay avoids
# entirely.
sraw=$(go test ./internal/store/ -run '^$' -bench 'JournalAppend|WarmStartLoad' \
  -benchmem -benchtime "$benchtime" 2>&1)
echo "$sraw"
rraw=$(go test ./internal/service/ -run '^$' -bench 'ExtractionLive|ExtractionReplay' \
  -benchtime "$benchtime" 2>&1)
echo "$rraw"

sfield() { echo "$sraw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $3; exit}'; }
smbs() { echo "$sraw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {for (i=2;i<NF;i++) if ($(i+1)=="MB/s") {print $i; exit}}'; }
rfield() { echo "$rraw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $3; exit}'; }
rmetric() { echo "$rraw" | awk -v b="$1" -v u="$2" '$1 ~ "^Benchmark"b"(-|$)" {for (i=2;i<NF;i++) if ($(i+1)==u) {print $i; exit}}'; }

append_ns=$(sfield JournalAppend)
append_mbs=$(smbs JournalAppend)
warm_ns=$(sfield WarmStartLoad)
live_ns=$(rfield ExtractionLive)
replay_ns=$(rfield ExtractionReplay)
experiment_s=$(rmetric ExtractionReplay "virtual-s/op")

store_out="BENCH_store.json"
cat > "$store_out" <<JSON
{
  "schema": "fastvg-bench-store/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "benchtime": "$benchtime",
  "units": {
    "journal_append_ns": "nanoseconds per persisted record (CRC frame + write syscall)",
    "journal_append_mb_s": "journal append throughput on result-sized payloads",
    "warm_start_load_ms": "Open() of a journal holding 1024 persisted results",
    "extraction_live_ms": "fast extraction against a live 100x100 simulated instrument, wall clock",
    "extraction_replay_ms": "same extraction re-executed from its recorded probe trace (file read + decode included)",
    "replay_vs_live_speedup": "wall-clock ratio live/replay against the in-process simulator (dwell is virtual there, so this hovers near 1)",
    "experiment_s_avoided": "instrument dwell seconds the recorded extraction cost; on hardware a live run pays this in wall time, a replay never does",
    "replay_vs_hardware_speedup": "(experiment_s_avoided + live wall) / replay wall — the speedup replay delivers over re-running on a dwell-limited instrument"
  },
  "after": {
    "journal_append_ns": ${append_ns:-null},
    "journal_append_mb_s": ${append_mbs:-null},
    "warm_start_load_ms": $(awk -v ns="${warm_ns:-0}" 'BEGIN {printf "%.3f", ns / 1e6}'),
    "extraction_live_ms": $(awk -v ns="${live_ns:-0}" 'BEGIN {printf "%.3f", ns / 1e6}'),
    "extraction_replay_ms": $(awk -v ns="${replay_ns:-0}" 'BEGIN {printf "%.3f", ns / 1e6}'),
    "replay_vs_live_speedup": $(awk -v l="${live_ns:-0}" -v r="${replay_ns:-1}" 'BEGIN {printf "%.2f", l / r}'),
    "experiment_s_avoided": ${experiment_s:-null},
    "replay_vs_hardware_speedup": $(awk -v e="${experiment_s:-0}" -v l="${live_ns:-0}" -v r="${replay_ns:-1}" 'BEGIN {printf "%.0f", (e * 1e9 + l) / r}')
  }
}
JSON
echo "wrote $store_out"
# ---- n-dot chain extraction → BENCH_chain.json ----------------------------
# BenchmarkChainExtract runs the chainx planner sequentially (one worker)
# and concurrently (eight workers) for N = 4/8/16 dots. The headline
# "speedup" compares instrument dwell makespan — the wall-clock a
# dwell-limited lab pays — between the two schedules; probes per pair and
# the compute ns/op are reported alongside. BenchmarkChainPartialRecal
# measures the fleet's partial-recalibration saving: probes to re-extract
# one drifted pair of a 4-dot chain versus the whole device.
craw=$(go test ./internal/chainx/ -run '^$' -bench 'ChainExtract' \
  -benchtime "$benchtime" 2>&1)
echo "$craw"
praw=$(go test ./internal/fleet/ -run '^$' -bench 'ChainPartialRecal' \
  -benchtime "$benchtime" 2>&1)
echo "$praw"

cmetric() { # cmetric <dots> <seq|conc> <unit>
  echo "$craw" | awk -v b="BenchmarkChainExtract/dots-$1-$2" -v u="$3" \
    '$1 ~ b"(-|$)" {for (i=2;i<NF;i++) if ($(i+1)==u) {print $i; exit}}'
}
cns() {
  echo "$craw" | awk -v b="BenchmarkChainExtract/dots-$1-$2" \
    '$1 ~ b"(-|$)" {print $3; exit}'
}
pmetric() {
  echo "$praw" | awk -v u="$1" \
    '$1 ~ /^BenchmarkChainPartialRecal(-|$)/ {for (i=2;i<NF;i++) if ($(i+1)==u) {print $i; exit}}'
}

chain_out="BENCH_chain.json"
{
  cat <<JSON
{
  "schema": "fastvg-bench-chain/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "gomaxprocs": $(nproc),
  "benchtime": "$benchtime",
  "scenario": "N-dot chain extraction via internal/chainx: independent per-pair instruments, fast-method ladder, sequential (1 worker) vs concurrent (8 workers); partial recal on a 4-dot fleet chain device",
  "units": {
    "seq_dwell_s / conc_makespan_s": "instrument dwell wall-clock of the pair extractions, sequential sum vs concurrent list-schedule makespan (dwell dominates on hardware: 50 ms per probe)",
    "dwell_speedup": "seq_dwell_s / conc_makespan_s — the lab wall-time win of concurrent pair extraction",
    "probes_per_pair": "distinct configurations measured per pair (identical in both schedules: results are bit-identical)",
    "compute_ms": "CPU wall per whole-chain extraction on this machine (simulation cost, not dwell)",
    "partial_recal_probes / full_recal_probes": "probes to re-extract one drifted pair vs every pair of a 4-dot fleet chain device",
    "partial_savings": "full / partial — the probe saving of per-pair staleness"
  },
  "after": {
JSON
  for dots in 4 8 16; do
    seq_dwell=$(cmetric "$dots" seq "dwell-s/op")
    conc_mk=$(cmetric "$dots" conc "makespan-s/op")
    ppp=$(cmetric "$dots" conc "probes/pair")
    seq_ns=$(cns "$dots" seq)
    conc_ns=$(cns "$dots" conc)
    cat <<JSON
    "n${dots}": {
      "seq_dwell_s": ${seq_dwell:-null},
      "conc_makespan_s": ${conc_mk:-null},
      "dwell_speedup": $(awk -v s="${seq_dwell:-0}" -v c="${conc_mk:-1}" 'BEGIN {printf "%.2f", s / c}'),
      "probes_per_pair": ${ppp:-null},
      "seq_compute_ms": $(awk -v ns="${seq_ns:-0}" 'BEGIN {printf "%.2f", ns / 1e6}'),
      "conc_compute_ms": $(awk -v ns="${conc_ns:-0}" 'BEGIN {printf "%.2f", ns / 1e6}')
    },
JSON
  done
  cat <<JSON
    "partial_recal_probes": $(pmetric "probes/partial" | awk '{printf "%d", $1}'),
    "full_recal_probes": $(pmetric "probes/full" | awk '{printf "%d", $1}'),
    "partial_savings": $(pmetric "full/partial")
  }
}
JSON
} > "$chain_out"
echo "wrote $chain_out"
# ---- surrogate digital twin → BENCH_surrogate.json ------------------------
# BenchmarkFleetSurrogateRecalibration runs the same drift-only fleet loop
# all-live and twin-first and compares steady-state probes per matrix
# refresh — the headline: how many live probes a trained twin saves per
# recalibration. BenchmarkSurrogateEscalation scales the drift amplitude and
# reports the share of probing that must stay live; BenchmarkSurrogateProbe
# is the raw model-vs-simulator probe latency.
wraw=$(go test ./internal/fleet/ -run '^$' -bench 'FleetSurrogateRecalibration|SurrogateEscalation' \
  -benchtime "$benchtime" 2>&1)
echo "$wraw"
uraw=$(go test ./internal/surrogate/ -run '^$' -bench 'SurrogateProbe' \
  -benchtime "$benchtime" 2>&1)
echo "$uraw"

wmetric() { # wmetric <bench-suffix> <unit>
  echo "$wraw" | awk -v b="$1" -v u="$2" \
    '$1 ~ b"(-|$)" {for (i=2;i<NF;i++) if ($(i+1)==u) {print $i; exit}}'
}
uns() {
  echo "$uraw" | awk -v b="BenchmarkSurrogateProbe/$1" '$1 ~ b"(-|$)" {print $3; exit}'
}

live_ppr=$(wmetric "BenchmarkFleetSurrogateRecalibration/live" "probes/recal")
twin_ppr=$(wmetric "BenchmarkFleetSurrogateRecalibration/surrogate" "probes/recal")
twin_saved=$(wmetric "BenchmarkFleetSurrogateRecalibration/surrogate" "saved-frac")

surrogate_out="BENCH_surrogate.json"
{
  cat <<JSON
{
  "schema": "fastvg-bench-surrogate/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "gomaxprocs": $(nproc),
  "benchtime": "$benchtime",
  "scenario": "8 wandering (drift-only) fleet devices, 2 virtual hours warm-up then 8 measured, 1800 s check interval; all-live vs twin-first at the default threshold",
  "units": {
    "live_probes_per_recal / surrogate_probes_per_recal": "live instrument probes per successful matrix refresh, spot-checks amortised in",
    "probe_reduction": "live / surrogate — the headline probe saving of twin-first recalibration",
    "surrogate_saved_frac": "share of all steady-state probing served by twins instead of the instrument",
    "escalation_rate_by_drift": "live share of probing as the wandering drift amplitude scales (0 = static device)",
    "probe_twin_ns / probe_sim_ns": "one surrogate model prediction vs one simulated-instrument probe"
  },
  "after": {
    "live_probes_per_recal": ${live_ppr:-null},
    "surrogate_probes_per_recal": ${twin_ppr:-null},
    "probe_reduction": $(awk -v l="${live_ppr:-0}" -v s="${twin_ppr:-1}" 'BEGIN {printf "%.2f", l / s}'),
    "surrogate_saved_frac": ${twin_saved:-null},
    "escalation_rate_by_drift": {
JSON
  first=1
  for drift in 0.00 0.06 0.12 0.24; do
    rate=$(wmetric "BenchmarkSurrogateEscalation/drift=$drift" "escalation-rate")
    [ "$first" = 1 ] && first=0 || echo ","
    printf '      "%s": %s' "$drift" "${rate:-null}"
  done
  cat <<JSON

    },
    "probe_twin_ns": $(uns twin | awk '{printf "%s", $1+0}'),
    "probe_sim_ns": $(uns sim | awk '{printf "%s", $1+0}')
  }
}
JSON
} > "$surrogate_out"
echo "wrote $surrogate_out"
# ---- active-probing scheduler → BENCH_infogain.json ------------------------
# BenchmarkInfoGainVsFast runs the fast raster and the Bayesian active
# scheduler on identically spec'd default double-dot windows (4 seeds each)
# per noise preset and reports mean probes and matrix error for both; the
# headline "probe_cut" is fast probes / infogain probes at no worse error.
# BenchmarkInfoGainCurve traces probes spent and error reached as the CI
# target tightens — the probes-to-target-accuracy curve.
iraw=$(go test ./internal/infogain/ -run '^$' -bench 'InfoGainVsFast|InfoGainCurve' \
  -benchtime "$benchtime" 2>&1)
echo "$iraw"

imetric() { # imetric <bench-path> <unit>
  echo "$iraw" | awk -v b="$1" -v u="$2" \
    '$1 ~ b"(-|$)" {for (i=2;i<NF;i++) if ($(i+1)==u) {print $i; exit}}'
}

infogain_out="BENCH_infogain.json"
{
  cat <<JSON
{
  "schema": "fastvg-bench-infogain/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "benchtime": "$benchtime",
  "scenario": "default 100x100 double-dot window, 4 seeds per preset; fast raster extraction vs Bayesian active scheduler at the default 0.030 CI target, plus the probes-vs-accuracy curve at looser targets",
  "units": {
    "fast_probes / infogain_probes": "mean distinct configurations measured per extraction",
    "fast_err / infogain_err": "mean max-abs matrix-entry error vs the analytic truth",
    "probe_cut": "fast_probes / infogain_probes at no worse error — the headline",
    "curve": "per CI target: mean probes spent and error reached"
  },
  "after": {
JSON
  first=1
  for preset in noiseless white lab; do
    [ "$first" = 1 ] && first=0 || echo ","
    cat <<JSON
    "$preset": {
      "fast_probes": $(imetric "BenchmarkInfoGainVsFast/$preset" "fast-probes" | awk '{print $1+0}'),
      "fast_err": $(imetric "BenchmarkInfoGainVsFast/$preset" "fast-err" | awk '{print $1+0}'),
      "infogain_probes": $(imetric "BenchmarkInfoGainVsFast/$preset" "ig-probes" | awk '{print $1+0}'),
      "infogain_err": $(imetric "BenchmarkInfoGainVsFast/$preset" "ig-err" | awk '{print $1+0}'),
      "probe_cut": $(imetric "BenchmarkInfoGainVsFast/$preset" "probe-cut" | awk '{print $1+0}'),
      "curve": {
JSON
    cfirst=1
    for ci in 0.090 0.060 0.045 0.030; do
      [ "$cfirst" = 1 ] && cfirst=0 || echo ","
      printf '        "%s": { "probes": %s, "err": %s }' "$ci" \
        "$(imetric "BenchmarkInfoGainCurve/$preset/ci=$ci" "probes" | awk '{print $1+0}')" \
        "$(imetric "BenchmarkInfoGainCurve/$preset/ci=$ci" "err" | awk '{print $1+0}')"
    done
    cat <<JSON

      }
    }
JSON
  done
  cat <<JSON
  }
}
JSON
} > "$infogain_out"
echo "wrote $infogain_out"
# ---- telemetry overhead → BENCH_telemetry.json -----------------------------
# The observability acceptance gate: metric primitives must be single
# atomics with 0 allocs/op (internal/telemetry benchmarks), and the probe
# hot path with the worst-case per-probe instrumentation (one counter inc
# + one histogram observe, internal/device's BenchmarkProbeCounted) must
# stay within 2% of the bare path.
traw=$(go test ./internal/telemetry/ -run '^$' \
  -bench 'CounterInc|HistogramObserve|GaugeSet|Exposition' \
  -benchmem -benchtime "$benchtime" 2>&1)
echo "$traw"
# 5 repetitions, minimum taken per benchmark: the overhead headline is a
# difference of two ~90 ns numbers, and single runs on a shared machine
# jitter by more than the 2% gate.
praw=$(go test ./internal/device/ -run '^$' -bench 'ProbeBare|ProbeCounted' \
  -benchmem -benchtime "$benchtime" -count 5 2>&1)
echo "$praw"

tfield()  { echo "$traw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $3; exit}'; }
tallocs() { echo "$traw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $7; exit}'; }
pfield()  { echo "$praw" | awk -v b="$1" \
  '$1 ~ "^Benchmark"b"(-|$)" && (min == "" || $3+0 < min) {min = $3+0} END {print min}'; }
pallocs() { echo "$praw" | awk -v b="$1" \
  '$1 ~ "^Benchmark"b"(-|$)" && $7+0 > max {max = $7+0} END {print max+0}'; }

probe_bare=$(pfield ProbeBare)
probe_counted=$(pfield ProbeCounted)
overhead_pct=$(awk -v a="$probe_bare" -v b="$probe_counted" \
  'BEGIN {printf "%.2f", (a > 0 ? 100 * (b - a) / a : 0)}')

telemetry_out="BENCH_telemetry.json"
cat > "$telemetry_out" <<JSON
{
  "schema": "fastvg-bench-telemetry/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "benchtime": "$benchtime",
  "scenario": "metric primitive cost (internal/telemetry), full-registry exposition render, and the scalar probe hot path bare vs with worst-case per-probe instrumentation (counter inc + histogram observe)",
  "units": {
    "*_ns": "ns/op",
    "*_allocs": "allocs/op",
    "probe_overhead_pct": "100 * (probe_counted_ns - probe_bare_ns) / probe_bare_ns"
  },
  "targets": {
    "probe_overhead_pct": "< 2",
    "counter_inc_allocs": 0,
    "histogram_observe_allocs": 0
  },
  "after": {
    "counter_inc_ns": $(tfield CounterInc),
    "counter_inc_allocs": $(tallocs CounterInc),
    "histogram_observe_ns": $(tfield HistogramObserve),
    "histogram_observe_allocs": $(tallocs HistogramObserve),
    "gauge_set_ns": $(tfield GaugeSet),
    "gauge_set_allocs": $(tallocs GaugeSet),
    "exposition_ns": $(tfield Exposition),
    "probe_bare_ns": $probe_bare,
    "probe_bare_allocs": $(pallocs ProbeBare),
    "probe_counted_ns": $probe_counted,
    "probe_counted_allocs": $(pallocs ProbeCounted),
    "probe_overhead_pct": $overhead_pct
  }
}
JSON
echo "wrote $telemetry_out"
# ---- observability store → BENCH_obs.json ---------------------------------
# The tsdb acceptance gate: scraping the full ~164-sample registry into the
# delta-encoded rings must cost well under 1% of a 10 s scrape interval,
# ring appends stay allocation-free, and instant/range queries (the
# /v1/query and alert-engine read path) stay in the microseconds.
oraw=$(go test ./internal/tsdb/ -run '^$' \
  -bench 'RingAppend|Scrape|QueryRate|QueryQuantile' \
  -benchmem -benchtime "$benchtime" 2>&1)
echo "$oraw"

ofield()  { echo "$oraw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $3; exit}'; }
oallocs() { echo "$oraw" | awk -v b="$1" '$1 ~ "^Benchmark"b"(-|$)" {print $7; exit}'; }

scrape_ns=$(ofield Scrape)
# One scrape per 10 s interval: overhead = scrape_ns / 10e9 s, as percent.
scrape_overhead_pct=$(awk -v ns="${scrape_ns:-0}" \
  'BEGIN {printf "%.6f", 100 * ns / 10e9}')

obs_out="BENCH_obs.json"
cat > "$obs_out" <<JSON
{
  "schema": "fastvg-bench-obs/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "benchtime": "$benchtime",
  "scenario": "in-process tsdb over a daemon-sized registry (~164 samples): one full scrape into 512-point delta-encoded rings, a single ring append, and the query read path (rate over a counter window, p99 over a histogram window)",
  "units": {
    "*_ns": "ns/op",
    "*_allocs": "allocs/op",
    "scrape_overhead_pct": "100 * scrape_ns / 10s — scrape cost as a share of the default 10 s scrape interval"
  },
  "targets": {
    "scrape_overhead_pct": "< 1",
    "ring_append_allocs": 0
  },
  "after": {
    "ring_append_ns": $(ofield RingAppend),
    "ring_append_allocs": $(oallocs RingAppend),
    "scrape_ns": ${scrape_ns:-null},
    "scrape_allocs": $(oallocs Scrape),
    "query_rate_ns": $(ofield QueryRate),
    "query_rate_allocs": $(oallocs QueryRate),
    "query_quantile_ns": $(ofield QueryQuantile),
    "query_quantile_allocs": $(oallocs QueryQuantile),
    "scrape_overhead_pct": $scrape_overhead_pct
  }
}
JSON
echo "wrote $obs_out"
# ---- sharded serving → BENCH_shard.json ------------------------------------
# The sharded front-door acceptance gate: jobs/sec and per-job p99 as the
# shard count grows 1 → 2 → 4 → 8 with one dwell-limited worker (one
# emulated instrument) per shard, plus the scatter-gather batch path at
# 1 vs 8 shards. Throughput at 8 shards must be ≥3× the 1-shard figure.
# These iterations are dwell-bound (~1 s each at 1 shard), so the section
# runs a fixed iteration count rather than the time-based -benchtime.
shard_benchtime="${SHARD_BENCHTIME:-3x}"
hraw=$(go test ./internal/shard/ -run '^$' -bench 'ShardThroughput|ScatterGather' \
  -benchtime "$shard_benchtime" 2>&1)
echo "$hraw"

hmetric() { # hmetric <bench-path> <unit>
  echo "$hraw" | awk -v b="$1" -v u="$2" \
    '$1 ~ b"(-|$)" {for (i=2;i<NF;i++) if ($(i+1)==u) {print $i; exit}}'
}

tput1=$(hmetric "BenchmarkShardThroughput/shards-1" "jobs/s")
tput8=$(hmetric "BenchmarkShardThroughput/shards-8" "jobs/s")
sg1=$(hmetric "BenchmarkScatterGather/shards-1" "jobs/s")
sg8=$(hmetric "BenchmarkScatterGather/shards-8" "jobs/s")

shard_out="BENCH_shard.json"
{
  cat <<JSON
{
  "schema": "fastvg-bench-shard/1",
  "generated": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "cpu": "${cpu:-unknown}",
  "gomaxprocs": $(nproc),
  "benchtime": "$shard_benchtime",
  "scenario": "consistent-hash front door over N shards, one worker per shard with ~40 ms emulated instrument dwell per job; 24 concurrent jobs per iteration through Cluster.Run, and one 24-request batch per iteration through the scatter-gather path",
  "units": {
    "throughput.shards_N": "jobs/sec and per-job p99 ms through the router at N shards",
    "throughput_speedup_8x": "jobs/s at 8 shards / jobs/s at 1 shard (target ≥ 3)",
    "scatter_gather.shards_N": "batch jobs/sec: scattered by ring owner, merged in request order",
    "scatter_gather_speedup_8x": "batch jobs/s at 8 shards / 1 shard"
  },
  "targets": {
    "throughput_speedup_8x": ">= 3"
  },
  "after": {
    "throughput": {
JSON
  first=1
  for n in 1 2 4 8; do
    [ "$first" = 1 ] && first=0 || echo ","
    printf '      "shards_%d": { "jobs_per_s": %s, "p99_ms": %s }' "$n" \
      "$(hmetric "BenchmarkShardThroughput/shards-$n" "jobs/s" | awk '{print $1+0}')" \
      "$(hmetric "BenchmarkShardThroughput/shards-$n" "p99-ms" | awk '{print $1+0}')"
  done
  cat <<JSON

    },
    "throughput_speedup_8x": $(awk -v a="${tput1:-1}" -v b="${tput8:-0}" 'BEGIN {printf "%.2f", b / a}'),
    "scatter_gather": {
      "shards_1_jobs_per_s": ${sg1:-null},
      "shards_8_jobs_per_s": ${sg8:-null}
    },
    "scatter_gather_speedup_8x": $(awk -v a="${sg1:-1}" -v b="${sg8:-0}" 'BEGIN {printf "%.2f", b / a}')
  }
}
JSON
} > "$shard_out"
echo "wrote $shard_out"
