package fastvg

import (
	"context"
	"errors"
	"net/http"

	"github.com/fastvg/fastvg/internal/alert"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/service"
	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/trace"
	"github.com/fastvg/fastvg/internal/tsdb"
)

// This file is the façade over the extraction service subsystem
// (internal/service): a concurrent job scheduler, a deduplicating result
// cache and a session registry behind one Service value, served over HTTP by
// cmd/vgxd. Use it when extractions arrive as traffic — many scenarios, many
// repeats, many devices — rather than as single library calls.

// Service schedules extraction jobs on a bounded worker pool, deduplicates
// identical requests through a hash-keyed LRU result cache (concurrent
// identical submissions coalesce onto one extraction), and owns benchmark
// and simulated-device instruments through its registry.
type Service = service.Service

// ServiceConfig tunes NewService; the zero value uses one worker per CPU and
// a 1024-entry result cache.
type ServiceConfig = service.Config

// JobRequest describes one extraction job: a pipeline kind plus exactly one
// target (benchmark index, sim device spec, or open session ID).
type JobRequest = service.Request

// JobResult is the serialisable outcome of a job.
type JobResult = service.Result

// JobView is a snapshot of an asynchronously submitted job.
type JobView = service.JobView

// JobKind names an extraction pipeline.
type JobKind = service.Kind

// The schedulable pipeline kinds.
const (
	JobFast       = service.KindFast
	JobBaseline   = service.KindBaseline
	JobRays       = service.KindRays
	JobAdaptive   = service.KindAdaptive
	JobWindowFind = service.KindWindowFind
	JobVerify     = service.KindVerify
	JobChain      = service.KindChain
	JobInfoGain   = service.KindInfoGain
)

// ChainJobOptions tunes a chain job: per-pair windows, escalation ladder
// and probe budget. Normalization expands the windows and ladder to their
// explicit forms, so the request hash covers the full per-pair window list.
type ChainJobOptions = service.ChainOptions

// ChainReport is a chain job result's per-pair breakdown: the composed
// off-diagonals plus each pair's matrix, winning method and escalation
// attempts.
type ChainReport = service.ChainReport

// ServiceStats aggregates cache, scheduler, job and session accounting.
type ServiceStats = service.Stats

// NewService builds an extraction service.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// ServiceHandler returns the service's JSON HTTP API (the surface cmd/vgxd
// serves), mountable into any http.Server.
func ServiceHandler(s *Service) http.Handler { return s.Handler() }

// Table1Requests builds the paper's full evaluation — all 12 benchmarks
// under both methods — as one batch for Service.Batch.
func Table1Requests() []JobRequest { return service.Table1Requests() }

// RunJob executes one request synchronously through the service's cache and
// worker pool.
func RunJob(ctx context.Context, s *Service, req JobRequest) (*JobResult, error) {
	return s.Run(ctx, req)
}

// CloseService drains the service for shutdown: running extractions finish
// (bounded by ctx), queued jobs settle as cancelled, sessions close.
func CloseService(ctx context.Context, s *Service) error { return s.Close(ctx) }

// Fleet calibration: continuous drift-aware monitoring and recalibration of
// many devices, owned by the service (Service.Fleet()) and served under
// /v1/fleet. See internal/fleet for the scheduling semantics.

// FleetManager owns a fleet of drifting simulated devices: it spot-checks
// matrix freshness on a virtual clock, scores staleness, and schedules
// re-extractions on the service's worker pool under a global probe budget.
type FleetManager = fleet.Manager

// FleetPolicy tunes the calibration loop (check cadence, staleness
// threshold, hysteresis, probe budget); the zero value is a reasonable
// lab-day configuration.
type FleetPolicy = fleet.Policy

// FleetDeviceConfig registers one device: an ID, a scheduling weight and a
// device spec (including its lever-arm drift profile) — either a double-dot
// Spec or an N-dot Chain spec, whose adjacent pairs are then monitored and
// recalibrated individually.
type FleetDeviceConfig = fleet.DeviceConfig

// FleetStatus is a fleet-wide snapshot; FleetDeviceView one device's.
type FleetStatus = fleet.Status

// FleetDeviceView is a serialisable per-device snapshot; its Pairs field
// breaks the aggregates down per adjacent pair for chain devices.
type FleetDeviceView = fleet.DeviceView

// FleetPairStatus is one adjacent pair's calibration snapshot inside a
// FleetDeviceView.
type FleetPairStatus = fleet.PairStatus

// FleetEvent is one calibration-history entry.
type FleetEvent = fleet.Event

// FleetSummary is the outcome of a simulated fleet run (cmd/vgxfleet).
type FleetSummary = fleet.Summary

// DefaultFleetConfigs builds n heterogeneous device configs cycling through
// the canonical drift profiles (quiet / standard / wandering / jumpy),
// fully determined by seed.
func DefaultFleetConfigs(n int, seed uint64) ([]FleetDeviceConfig, error) {
	return fleet.DefaultFleet(n, seed)
}

// DefaultChainFleetConfigs builds n chain device configs of the given dot
// count with heterogeneous per-pair drift, fully determined by seed.
func DefaultChainFleetConfigs(n, dots int, seed uint64) []FleetDeviceConfig {
	return fleet.DefaultChainFleet(n, dots, seed)
}

// Persistence & replay: with ServiceConfig.DataDir set the service journals
// cacheable results and fleet calibration state to an append-only,
// CRC-framed store (internal/store) and restores both on the next start;
// with RecordTraces it also records every extraction's probe trace
// (internal/trace) for offline, zero-probe replay. cmd/vgxd exposes the
// flags; cmd/vgxreplay re-executes recordings and diffs the matrices.

// ReplayOutcome is the verdict of re-executing one recorded extraction:
// whether the reproduced result is identical (bit-identical floats) to the
// recorded one, with field-level diffs when it is not.
type ReplayOutcome = service.ReplayOutcome

// ReplayTrace re-executes the extraction recorded in a probe-trace file
// against the recorded samples — zero live-instrument probes — and diffs
// the reproduced result against the recorded one.
func ReplayTrace(path string) (*ReplayOutcome, error) { return service.ReplayTrace(path) }

// ReplayJournal re-executes every extraction journaled under a durable
// service's data dir against fresh instruments and diffs each reproduced
// result against the journaled one. Session-target entries are skipped.
func ReplayJournal(ctx context.Context, dataDir string, workers int) ([]ReplayOutcome, error) {
	return service.ReplayJournal(ctx, dataDir, workers)
}

// ListTraces returns the probe-trace files under dir (a durable service
// writes them to <DataDir>/traces), sorted by name.
func ListTraces(dir string) ([]string, error) { return trace.List(dir) }

// Observability: every service registers its metric families (counters,
// gauges, fixed-bucket histograms — all vgx_*-prefixed) on a telemetry
// registry exposed in Prometheus text format at GET /metrics, and, when
// durable, journals a span tree per executed job recording where the job
// spent wall-clock and virtual (simulated-instrument) time. See
// internal/telemetry for the registry semantics and the metric catalogue
// in README.md.

// TelemetryRegistry is the process metric registry; obtain a service's
// via Service.Telemetry(), or pass one in ServiceConfig.Telemetry to
// share a registry (and one /metrics endpoint) across components.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry builds an empty metric registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// JobSpan is one node of a job's recorded timing tree: name, attributes,
// wall-clock and virtual durations, children. Render writes the indented
// tree listing that `vgxreplay -spans` prints.
type JobSpan = telemetry.Span

// SpanRecord pairs a journaled span tree with its request hash.
type SpanRecord = service.SpanRecord

// LoadSpans reads every journaled job span tree under a durable service's
// data dir, in hash order — the vgxreplay -spans path.
func LoadSpans(dataDir string) ([]SpanRecord, error) { return service.LoadSpans(dataDir) }

// ErrServiceOverloaded rejects submissions once the worker-pool queue is
// at ServiceConfig.MaxQueueDepth; the HTTP API maps it to 429 with a
// Retry-After header. Cache hits are still served under overload.
var ErrServiceOverloaded = service.ErrOverloaded

// IsOverloaded reports whether err is the load-shedding rejection — the
// typed check callers use to decide "back off and retry" versus "fail":
// overload is the one service error that is about the server's moment,
// not the request's content. examples/serving shows the retry loop.
func IsOverloaded(err error) bool { return errors.Is(err, service.ErrOverloaded) }

// Alerting & history: every service scrapes its own metric registry into
// an in-process time-series store (internal/tsdb — fixed-size,
// delta-encoded rings, bounded memory) and evaluates a declarative SLO
// rule catalogue (internal/alert) over it. Instant and range queries are
// served at GET /v1/query, the alert board at GET /v1/alerts, and a
// flight-recorder bundle (metrics + tsdb windows + alerts + span trees +
// build info, one tar.gz) at GET /debug/bundle. On a durable service
// alert transitions are journaled, so history survives kill -9; cmd/vgxtop
// is the terminal dashboard over the same endpoints.

// AlertRule is one declarative alert: an expression over the tsdb, a
// comparison threshold and a for-duration.
type AlertRule = alert.Rule

// AlertExpr is one scalar-valued tsdb query inside a rule.
type AlertExpr = alert.Expr

// AlertEvent is one journaled firing/resolved transition.
type AlertEvent = alert.Event

// AlertStatus is one rule's current standing (GET /v1/alerts).
type AlertStatus = alert.Status

// DefaultAlertRules is the stock SLO catalogue a service runs when
// ServiceConfig.AlertRules is nil: load shedding, fleet staleness,
// persist errors, surrogate escalation ratio, pool saturation.
func DefaultAlertRules() []AlertRule { return alert.DefaultRules() }

// LoadAlertHistory reads the journaled alert transitions under a durable
// service's data dir, oldest first — the vgxreplay -alerts path.
func LoadAlertHistory(dataDir string) ([]AlertEvent, error) {
	return service.LoadAlertHistory(dataDir)
}

// TSDBQuery is one instant/range query against a service's in-process
// time-series store; TSDBResult its answer. The HTTP form is
// GET /v1/query?fn=&series=&window=&q=.
type TSDBQuery = tsdb.Query

// TSDBResult is a tsdb query's evaluated answer.
type TSDBResult = tsdb.Result
