module github.com/fastvg/fastvg

go 1.24
