package fastvg

import (
	"github.com/fastvg/fastvg/internal/anchors"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/qflow"
)

// newDatasetInstrument wraps a pre-generated benchmark CSD in a dataset
// replay instrument with the paper's dwell, for the benchmark harness.
func newDatasetInstrument(data *grid.Grid, bm *qflow.Benchmark) (*device.DatasetInstrument, error) {
	return device.NewDatasetInstrument(data, bm.Window, device.DefaultDwell)
}

// anchorsFind runs the anchor preprocessing with paper defaults.
func anchorsFind(src anchors.Source, w, h int) (anchors.Result, error) {
	return anchors.Find(src, w, h, anchors.DefaultConfig())
}
