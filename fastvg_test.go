package fastvg

import (
	"errors"
	"math"
	"testing"
)

func angleErrDeg(got, want float64) float64 {
	return math.Abs(math.Atan(got)-math.Atan(want)) * 180 / math.Pi
}

func TestExtractOnSimulatedDevice(t *testing.T) {
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(inst, inst.Window(), Options{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("steep slope %v vs truth %v (Δ%.2f°)", res.SteepSlope, truth.SteepSlope, e)
	}
	if e := angleErrDeg(res.ShallowSlope, truth.ShallowSlope); e > 3.5 {
		t.Errorf("shallow slope %v vs truth %v (Δ%.2f°)", res.ShallowSlope, truth.ShallowSlope, e)
	}
	if res.Probes <= 0 {
		t.Error("probe accounting missing")
	}
	if res.Probes > 2500 {
		t.Errorf("fast extraction probed %d of 10000 pixels", res.Probes)
	}
	if res.ExperimentTime <= 0 {
		t.Error("experiment time missing")
	}
	if len(res.TransitionPoints) < 10 {
		t.Errorf("only %d transition points", len(res.TransitionPoints))
	}
}

func TestExtractBaselineOnSimulatedDevice(t *testing.T) {
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{Pixels: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractBaseline(inst, inst.Window(), BaselineOptions{})
	if err != nil {
		t.Fatalf("ExtractBaseline: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("steep slope %v vs truth %v (Δ%.2f°)", res.SteepSlope, truth.SteepSlope, e)
	}
	if res.Probes != 64*64 {
		t.Errorf("baseline probed %d, want full raster", res.Probes)
	}
}

func TestFastBeatsBaselineOnProbes(t *testing.T) {
	instA, _, err := NewDoubleDotSim(DoubleDotSimOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Extract(instA, instA.Window(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	instB, _, err := NewDoubleDotSim(DoubleDotSimOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ExtractBaseline(instB, instB.Window(), BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(base.Probes) / float64(fast.Probes); ratio < 4 {
		t.Errorf("probe reduction only %.1fx", ratio)
	}
	if base.ExperimentTime <= fast.ExperimentTime {
		t.Error("baseline experiment time not larger")
	}
}

func TestExtractWithNoise(t *testing.T) {
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{
		Noise: NoiseParams{WhiteSigma: 0.02, PinkAmp: 0.015},
		Seed:  42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(inst, inst.Window(), Options{})
	if err != nil {
		t.Fatalf("Extract under moderate noise: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("noisy steep slope off by %.2f°", e)
	}
}

func TestMatrixOrthogonalisesTruth(t *testing.T) {
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(inst, inst.Window(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sErr, hErr := res.Matrix.OrthogonalityError(truth.SteepSlope, truth.ShallowSlope)
	if sErr > 3.5 || hErr > 3.5 {
		t.Errorf("virtualization residual cross-coupling (%.2f°, %.2f°)", sErr, hErr)
	}
}

func TestSimOptionValidation(t *testing.T) {
	if _, _, err := NewDoubleDotSim(DoubleDotSimOptions{SteepSlope: -0.5}); err == nil {
		t.Error("accepted non-steep steep slope")
	}
	if _, err := NewChainSim(ChainSimOptions{Dots: 1}); err == nil {
		t.Error("accepted 1-dot chain")
	}
}

func TestExtractChainQuadrupleDot(t *testing.T) {
	sim, err := NewChainSim(ChainSimOptions{Dots: 4})
	if err != nil {
		t.Fatal(err)
	}
	windows := make([]Window, 3)
	for i := range windows {
		windows[i] = sim.RecommendedWindow(100)
	}
	base := []float64{0, 0, 0, 0}
	chain, exts, err := ExtractChain(sim, windows, base, Options{})
	if err != nil {
		t.Fatalf("ExtractChain: %v", err)
	}
	if len(exts) != 3 {
		t.Fatalf("%d pair extractions, want 3", len(exts))
	}
	for i := range exts {
		steep, shallow := sim.PairTruth(i)
		if e := angleErrDeg(exts[i].SteepSlope, steep); e > 3.5 {
			t.Errorf("pair %d steep %v vs %v (Δ%.2f°)", i, exts[i].SteepSlope, steep, e)
		}
		if e := angleErrDeg(exts[i].ShallowSlope, shallow); e > 3.5 {
			t.Errorf("pair %d shallow %v vs %v (Δ%.2f°)", i, exts[i].ShallowSlope, shallow, e)
		}
	}
	m := chain.Matrix()
	if len(m) != 4 {
		t.Fatalf("chain matrix is %d×%d", len(m), len(m))
	}
	for i := 0; i < 4; i++ {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, m[i][i])
		}
	}
	// Off-diagonals approximate the lever-arm ratios (≈ CrossFrac 0.12).
	for i := 0; i < 3; i++ {
		if m[i][i+1] < 0.05 || m[i][i+1] > 0.25 {
			t.Errorf("a12[%d] = %v, want ≈0.12", i, m[i][i+1])
		}
		if m[i+1][i] < 0.05 || m[i+1][i] > 0.25 {
			t.Errorf("a21[%d] = %v, want ≈0.12", i, m[i+1][i])
		}
	}
}

func TestExtractChainWindowCountValidation(t *testing.T) {
	sim, err := NewChainSim(ChainSimOptions{Dots: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ExtractChain(sim, []Window{sim.RecommendedWindow(64)}, []float64{0, 0, 0}, Options{})
	if err == nil {
		t.Error("accepted wrong window count")
	}
}

func TestBenchmarksSuite(t *testing.T) {
	suite, err := Benchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 12 {
		t.Fatalf("suite has %d benchmarks", len(suite))
	}
	inst, err := BenchmarkInstrument(suite[2])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(inst, suite[2].Window, Options{})
	if err != nil {
		t.Fatalf("Extract on benchmark 3: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, suite[2].Truth.SteepSlope); e > 3.5 {
		t.Errorf("benchmark 3 steep slope off by %.2f°", e)
	}
}

func TestErrNonPhysicalSurfaces(t *testing.T) {
	// A featureless instrument (always the same current) cannot produce
	// physical lines; Extract must fail with a sentinel error.
	inst := constInstrument{}
	_, err := Extract(inst, NewWindow(0, 0, 50, 64), Options{})
	if err == nil {
		t.Fatal("extraction succeeded on constant data")
	}
	if !errors.Is(err, ErrAnchors) && !errors.Is(err, ErrFit) && !errors.Is(err, ErrNonPhysical) {
		t.Errorf("error %v is not a sentinel", err)
	}
}

type constInstrument struct{}

func (constInstrument) GetCurrent(v1, v2 float64) float64 { return 1 }

func TestAblationOptionsReachPipeline(t *testing.T) {
	inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{Pixels: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(inst, inst.Window(), Options{RowSweepOnly: true, DisableFilter: true})
	if err != nil {
		t.Fatalf("ablated extraction failed on clean device: %v", err)
	}
	if len(res.Detail.ColTrace.Chosen) != 0 {
		t.Error("RowSweepOnly did not reach the pipeline")
	}
}
